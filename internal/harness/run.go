package harness

import (
	"bytes"
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graphson"
	"repro/internal/workload"
)

// Run executes the full evaluation: Table 3 statistics, loading and
// space (Figures 1(a,b), 3(a)), the micro workload in interactive and
// batch mode on every engine × dataset (Figures 3–7), the indexed
// variant of Q11 (Figure 4(c)), and — when ldbc is among the datasets —
// the complex workload (Figure 2).
func (r *Runner) Run() (*Results, error) {
	out := &Results{Config: r.cfg, Stats: map[string]datasets.Table3Row{}}
	for _, ds := range r.cfg.Datasets {
		r.progressf("stats %s", ds)
		out.Stats[ds] = datasets.Stats(r.graph(ds))
	}
	for _, ds := range r.cfg.Datasets {
		for _, en := range r.cfg.Engines {
			r.progressf("micro %s on %s", en, ds)
			if err := r.runMicro(out, en, ds); err != nil {
				return nil, err
			}
		}
		if ds == "ldbc" {
			for _, en := range r.cfg.Engines {
				r.progressf("complex %s on ldbc", en)
				if err := r.runComplex(out, en); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// rawJSONSize measures the GraphSON size of a dataset (the "Raw Data"
// bar of Figure 1).
func rawJSONSize(g *core.Graph) int64 {
	var buf bytes.Buffer
	if err := graphson.Write(&buf, g); err != nil {
		return 0
	}
	return int64(buf.Len())
}

// queryOrder returns the micro queries with reads and traversals first
// and destructive operations last, so shared-instance runs are not
// perturbed; within a group, Table 2 order.
func queryOrder() []workload.Query {
	all := workload.Queries()
	var reads, writes []workload.Query
	for _, q := range all {
		if q.Mutates {
			writes = append(writes, q)
		} else {
			reads = append(reads, q)
		}
	}
	return append(reads, writes...)
}

func (r *Runner) runMicro(out *Results, engine, dataset string) error {
	g := r.graph(dataset)
	e, res, loadTime, err := r.loadInto(engine, dataset)
	if err != nil {
		return err
	}
	out.Loads = append(out.Loads, LoadMeasurement{
		Engine: engine, Dataset: dataset,
		Elapsed: loadTime, Space: e.SpaceUsage(), RawJSON: rawJSONSize(g),
	})
	pg := NewParamGen(g, r.cfg.Seed)

	record := func(m Measurement, mode Mode) {
		m.Engine, m.Dataset, m.Mode = engine, dataset, mode
		out.Micro = append(out.Micro, m)
	}

	for _, q := range queryOrder() {
		q := q
		exec := e
		execRes := res
		// Isolation: mutating queries run against a fresh copy so the
		// shared instance stays pristine.
		if q.Mutates && r.cfg.Isolation {
			fresh, freshRes, _, err := r.loadInto(engine, dataset)
			if err != nil {
				return err
			}
			exec, execRes = fresh, freshRes
		}

		// Q32 is swept over depths 2..5 (Figure 6); everything else
		// runs once per mode.
		if q.Num == 32 {
			for depth := 2; depth <= 5; depth++ {
				pg.SetDepth(depth)
				m := r.timeQuery(exec, &q, pg.For(&q, 0, execRes))
				m.Query = q.Name + depthSuffix(depth)
				record(m, ModeInteractive)
				record(r.batch(exec, &q, pg, execRes), ModeBatch)
			}
			pg.SetDepth(2)
		} else {
			record(r.timeQuery(exec, &q, pg.For(&q, 0, execRes)), ModeInteractive)
			record(r.batch(exec, &q, pg, execRes), ModeBatch)
		}

		if exec != e {
			exec.Close()
		}
	}

	// Figure 4(c): Q11 with a user attribute index.
	if err := r.runIndexed(out, engine, dataset, pg); err != nil {
		return err
	}
	e.Close()
	return nil
}

func depthSuffix(d int) string {
	return "(d=" + string(rune('0'+d)) + ")"
}

// batch executes BatchSize iterations and reports the total time; one
// timeout or failure marks the whole batch, as in Figure 1(c).
func (r *Runner) batch(e core.Engine, q *workload.Query, pg *ParamGen, res *core.LoadResult) Measurement {
	total := Measurement{Query: q.Name}
	if q.Num == 32 {
		total.Query = q.Name + depthSuffix(pg.depth)
	}
	start := time.Now()
	deadline := time.Now().Add(r.cfg.Timeout * time.Duration(r.cfg.BatchSize))
	for i := 0; i < r.cfg.BatchSize; i++ {
		iter := i
		if q.Mutates {
			// The interactive execution already consumed pool slot 0 on
			// this instance; destructive batch iterations must target
			// fresh objects.
			iter = i + 1
		}
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		res2, err := q.Run(ctx, e, pg.For(q, iter, res))
		cancel()
		total.Count = res2.Count
		if err != nil {
			classify(&total, err)
			break
		}
	}
	total.Elapsed = time.Since(start)
	return total
}

// runIndexed builds the attribute index on the Q11 property and re-runs
// Q11 (Figure 4(c)). Engines without user indexes (BlazeGraph) are
// skipped, engines that accept but ignore the index (Sparksee,
// ArangoDB) run unchanged — both as the paper found.
func (r *Runner) runIndexed(out *Results, engine, dataset string, pg *ParamGen) error {
	e, res, _, err := r.loadInto(engine, dataset)
	if err != nil {
		return err
	}
	defer e.Close()
	if err := e.BuildVertexPropIndex(pg.vPropName); err != nil {
		if err == core.ErrUnsupported {
			return nil
		}
		return err
	}
	q := workload.ByName("Q11")
	m := r.timeQuery(e, q, pg.For(q, 0, res))
	m.Engine, m.Dataset, m.Mode = engine, dataset, ModeInteractive
	m.Query = "Q11(idx)"
	out.Indexed = append(out.Indexed, m)

	// Index maintenance overhead (Section 6.4: with indexes, CUD slows
	// by ~10%, up to ~30% for Neo 3.0 and ~100% for OrientDB): re-run
	// the property-insertion query against the indexed property.
	q5 := workload.ByName("Q5")
	p5 := pg.For(q5, 1, res)
	p5.NewPropName = pg.vPropName
	m5 := r.timeQuery(e, q5, p5)
	m5.Engine, m5.Dataset, m5.Mode = engine, dataset, ModeInteractive
	m5.Query = "Q5(idx)"
	out.Indexed = append(out.Indexed, m5)
	return nil
}

// runComplex executes the 13 LDBC-derived queries (Figure 2) on ldbc.
func (r *Runner) runComplex(out *Results, engine string) error {
	g := r.graph("ldbc")
	e, res, _, err := r.loadInto(engine, "ldbc")
	if err != nil {
		return err
	}
	defer e.Close()
	cp := ComplexFor(g, r.cfg.Seed, res)
	for _, cq := range workload.ComplexQueries() {
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.Timeout)
		start := time.Now()
		res2, err := cq.Run(ctx, e, cp)
		m := Measurement{
			Engine: engine, Dataset: "ldbc", Query: cq.Name,
			Mode: ModeInteractive, Elapsed: time.Since(start), Count: res2.Count,
		}
		classify(&m, err)
		cancel()
		out.Complex = append(out.Complex, m)
	}
	return nil
}
