package harness

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/remote"
	"repro/internal/workload"
)

// jobKind distinguishes the independent cell types of the evaluation
// grid.
type jobKind int

const (
	// The micro workload is split into two independently resumable
	// cells per (engine, dataset): the interactive half also records
	// the load/space measurement (it loads first in plan order), the
	// batch half loads its own instance. Halving the cell granularity
	// halves the work a crash can lose — the paper's micro grid
	// dominates run time, and a cell is the checkpoint's atom.
	jobMicroI  jobKind = iota // interactive micro half (records the load)
	jobMicroB                 // batch micro half
	jobIndexed                // Q11/Q5 with an attribute index (Figure 4(c))
	jobComplex                // complex workload on ldbc (Figure 2)
)

func (k jobKind) String() string {
	switch k {
	case jobMicroI:
		return "micro-i"
	case jobMicroB:
		return "micro-b"
	case jobIndexed:
		return "indexed"
	case jobComplex:
		return "complex"
	}
	return "unknown"
}

// gridJob is one independently executable cell of the evaluation grid.
type gridJob struct {
	kind    jobKind
	engine  string
	dataset string
}

// cellResult collects everything one grid job measured. Each worker
// writes only into its own pre-sized slot, so the assembled Results
// retain the exact sequential order regardless of completion order.
type cellResult struct {
	loads   []LoadMeasurement
	micro   []Measurement
	indexed []Measurement
	complex []Measurement
	err     error // set only under Config.ErrorsFatal
}

// Run executes the full evaluation: Table 3 statistics, loading and
// space (Figures 1(a,b), 3(a)), the micro workload in interactive and
// batch mode on every engine × dataset (Figures 3–7), the indexed
// variant of Q11 (Figure 4(c)), and — when ldbc is among the datasets —
// the complex workload (Figure 2).
//
// The grid cells are independent jobs executed on Config.Workers
// goroutines; results are assembled in plan order, so any worker count
// produces output identical to a sequential run. An engine that fails
// to construct or load is recorded as DNF (failed LoadMeasurement plus
// failed cells) and the evaluation continues, unless Config.ErrorsFatal
// requests the first such error to abort the run.
//
// With Config.CheckpointPath set, every completed cell is streamed to
// the checkpoint file as its worker finishes; with Config.Resume, a
// compatible checkpoint is replayed first and only the cells it is
// missing are executed — the assembled Results are byte-identical to an
// uninterrupted run either way.
//
// With Config.Remote set, the listed gdb-worker processes contribute
// additional execution slots: cells are shipped over the wire, their
// results land in the same plan-indexed slots (and flow through the
// same checkpoint stream) as local ones, and a worker that dies
// mid-cell has its cell reassigned to the local queue. Where a cell
// ran never changes what it measured.
func (r *Runner) Run() (*Results, error) {
	jobs := r.planJobs()
	cells := make([]cellResult, len(jobs))
	fp := r.fingerprint(len(jobs))

	// Everything that can fail fast does so before dataset generation —
	// the longest sequential stretch of a run: a typo'd worker address,
	// a mismatched worker build, or an incompatible checkpoint must
	// surface in milliseconds, not after the graphs are built.
	var clients []*remote.Client
	if len(r.cfg.Remote) > 0 {
		// With ServeArtifacts the runner doubles as the workers'
		// artifact source: cold workers pull dataset snapshots from
		// this process instead of regenerating them.
		var artifacts remote.ArtifactProvider
		if r.cfg.ServeArtifacts {
			artifacts = r
		}
		var err error
		clients, err = dialRemotes(r.cfg.Remote, fp, artifacts)
		if err != nil {
			return nil, err
		}
		defer func() {
			for _, cl := range clients {
				cl.Close()
			}
		}()
		slots := 0
		for _, cl := range clients {
			slots += cl.Capacity()
		}
		r.progressf("remote: %d workers providing %d extra slots", len(clients), slots)
	}

	var recovered map[int]cellResult
	var cp *checkpointWriter
	if r.cfg.CheckpointPath != "" {
		if r.cfg.Resume {
			var err error
			recovered, err = loadCheckpoint(r.cfg.CheckpointPath, fp)
			if err != nil {
				return nil, err
			}
			if len(recovered) > 0 {
				r.progressf("resume: %d/%d cells restored from %s", len(recovered), len(jobs), r.cfg.CheckpointPath)
			}
		}
		var err error
		cp, err = newCheckpointWriter(r.cfg.CheckpointPath, fp, recovered)
		if err != nil {
			return nil, err
		}
		defer cp.close()
	}

	out := &Results{Config: r.cfg, Stats: map[string]datasets.Table3Row{}}
	for _, ds := range r.cfg.Datasets {
		r.progressf("stats %s", ds)
		out.Stats[ds] = datasets.Stats(r.graph(ds))
	}

	// Recovered cells are restored in place; only the rest is scheduled.
	pending := make([]int, 0, len(jobs))
	for i := range jobs {
		if c, ok := recovered[i]; ok {
			cells[i] = c
		} else {
			pending = append(pending, i)
		}
	}

	var aborted atomic.Bool
	sched := newCellScheduler(pending)
	// finish is the shared completion path: it streams the cell to the
	// checkpoint (wherever it was executed) and stops the grid on a
	// fatal cell or a checkpoint write failure — durability was
	// requested and is gone, so failing fast beats burning hours on
	// cells that cannot be checkpointed (everything already streamed
	// stays resumable).
	finish := func(i int) {
		if cells[i].err != nil {
			aborted.Store(true)
			sched.stop()
			return
		}
		if cp != nil {
			streamed, err := cp.write(i, cells[i])
			if err != nil {
				aborted.Store(true)
				sched.stop()
				return
			}
			if n := r.cfg.CrashAfterCells; n > 0 && streamed >= n {
				r.progressf("fault injection: crashing after %d checkpointed cells", streamed)
				r.exit(1)
			}
		}
	}

	localWorker := func() {
		for {
			i, ok := sched.nextLocal()
			if !ok {
				return
			}
			// Under an abort the grid drains: in-flight cells
			// finish, queued ones are skipped.
			if !aborted.Load() {
				cells[i] = r.runCell(jobs[i])
				finish(i)
			}
			sched.done()
		}
	}
	var wg sync.WaitGroup
	localWorkers := r.cfg.Workers
	if localWorkers > len(pending) {
		localWorkers = len(pending)
	}
	for w := 1; w < localWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			localWorker()
		}()
	}
	for ci, cl := range clients {
		for k := 0; k < cl.Capacity(); k++ {
			wg.Add(1)
			sched.registerRemoteSlot(ci)
			go func(ci int, cl *remote.Client) {
				defer wg.Done()
				defer sched.retireRemoteSlot(ci)
				r.remoteSlot(ci, cl, sched, jobs, cells, &aborted, finish)
			}(ci, cl)
		}
	}
	// One local worker always runs on the calling goroutine — with
	// -workers 1 the grid executes exactly where Run was called (the
	// contract runPool had, which fault-injection tests rely on), and a
	// requeued remote cell always has a local executor to land on.
	if localWorkers > 0 {
		localWorker()
	}
	wg.Wait()
	if cp != nil {
		if err := cp.firstErr(); err != nil {
			return nil, err
		}
	}

	for i := range cells {
		if cells[i].err != nil {
			return nil, cells[i].err
		}
	}
	for i := range cells {
		out.Loads = append(out.Loads, cells[i].loads...)
		out.Micro = append(out.Micro, cells[i].micro...)
		out.Indexed = append(out.Indexed, cells[i].indexed...)
		out.Complex = append(out.Complex, cells[i].complex...)
	}
	return out, nil
}

// planJobs lays out the grid in the canonical sequential order; the
// job list order is also the assembly order of the result slices.
func (r *Runner) planJobs() []gridJob {
	return planGrid(r.cfg.Engines, r.cfg.Datasets)
}

// planGrid is the deterministic grid plan shared by the runner, remote
// workers (which re-derive it from the handshake fingerprint) and the
// -status command (which re-derives it from a checkpoint header): the
// same engine and dataset lists always produce the same indexed plan.
func planGrid(engineNames, datasetNames []string) []gridJob {
	var jobs []gridJob
	for _, ds := range datasetNames {
		for _, en := range engineNames {
			jobs = append(jobs, gridJob{jobMicroI, en, ds})
			jobs = append(jobs, gridJob{jobMicroB, en, ds})
			jobs = append(jobs, gridJob{jobIndexed, en, ds})
		}
		if ds == "ldbc" {
			for _, en := range engineNames {
				jobs = append(jobs, gridJob{jobComplex, en, ds})
			}
		}
	}
	return jobs
}

// runCell executes one grid job. Load errors inside the job are
// recorded as DNF cells; they become fatal only under ErrorsFatal.
func (r *Runner) runCell(j gridJob) cellResult {
	var c cellResult
	var err error
	switch j.kind {
	case jobMicroI:
		r.progressf("micro-i %s on %s", j.engine, j.dataset)
		err = r.runMicro(&c, j.engine, j.dataset, ModeInteractive)
	case jobMicroB:
		r.progressf("micro-b %s on %s", j.engine, j.dataset)
		err = r.runMicro(&c, j.engine, j.dataset, ModeBatch)
	case jobIndexed:
		r.progressf("indexed %s on %s", j.engine, j.dataset)
		err = r.runIndexed(&c, j.engine, j.dataset)
	case jobComplex:
		r.progressf("complex %s on ldbc", j.engine)
		err = r.runComplex(&c, j.engine)
	}
	if err != nil && r.cfg.ErrorsFatal {
		c.err = err
	}
	return c
}

// rawJSONSize measures the GraphSON size of a dataset (the "Raw Data"
// bar of Figure 1) by streaming the document through a counting
// writer: the size is exactly what materializing the document would
// report, without holding an O(dataset) buffer per run. Cached dataset
// artifacts carry the same number, computed by the same code, so warm
// runs skip even this pass.
func rawJSONSize(g *core.Graph) int64 {
	return datasets.RawJSONSize(g)
}

// queryOrder returns the micro queries with reads and traversals first
// and destructive operations last, so shared-instance runs are not
// perturbed; within a group, Table 2 order.
func queryOrder() []workload.Query {
	all := workload.Queries()
	var reads, writes []workload.Query
	for _, q := range all {
		if q.Mutates {
			writes = append(writes, q)
		} else {
			reads = append(reads, q)
		}
	}
	return append(reads, writes...)
}

// queryCells returns the measurement names q contributes per mode: the
// query name, or one per swept depth for Q32 (Figure 6).
func queryCells(q *workload.Query) []string {
	if q.Num != 32 {
		return []string{q.Name}
	}
	names := make([]string, 0, 4)
	for depth := 2; depth <= 5; depth++ {
		names = append(names, q.Name+depthSuffix(depth))
	}
	return names
}

// dnf builds the cell the paper reports as DNF: the engine never got a
// loaded instance to run this query on.
func dnf(query string, err error) Measurement {
	return Measurement{Query: query, Failed: true, Error: "DNF: " + err.Error()}
}

// runMicro executes one half of the micro workload — interactive or
// batch — as its own grid cell. The halves share nothing at runtime
// (each loads its own instance; ParamGen is pure per (query, iter), so
// both derive identical parameters from the dataset and seed), which is
// what lets a resumed run restore one half and re-execute only the
// other. The interactive half doubles as the load/space measurement;
// the batch half's load is purely operational.
func (r *Runner) runMicro(c *cellResult, engine, dataset string, mode Mode) error {
	ds := r.dataset(dataset)

	record := func(m Measurement) {
		m.Engine, m.Dataset, m.Mode = engine, dataset, mode
		c.micro = append(c.micro, m)
	}

	e, res, loadTime, err := r.loadInto(engine, dataset)
	if err != nil {
		if mode == ModeInteractive {
			c.loads = append(c.loads, LoadMeasurement{
				Engine: engine, Dataset: dataset, RawJSON: ds.rawJSON,
				Failed: true, Error: err.Error(),
			})
		}
		for _, q := range queryOrder() {
			q := q
			for _, name := range queryCells(&q) {
				record(dnf(name, err))
			}
		}
		return err
	}
	if mode == ModeInteractive {
		c.loads = append(c.loads, LoadMeasurement{
			Engine: engine, Dataset: dataset,
			Elapsed: loadTime, Space: e.SpaceUsage(), RawJSON: ds.rawJSON,
		})
	}
	pg := NewParamGen(ds.g, r.cfg.Seed)

	var firstErr error
	for _, q := range queryOrder() {
		q := q
		exec := e
		execRes := res
		// Isolation: mutating queries run against a fresh copy so the
		// shared instance stays pristine.
		if q.Mutates && r.cfg.Isolation {
			fresh, freshRes, _, err := r.loadInto(engine, dataset)
			if err != nil {
				// The shared instance is intact; only this query's cells
				// are DNF.
				for _, name := range queryCells(&q) {
					record(dnf(name, err))
				}
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			exec, execRes = fresh, freshRes
		}

		// Q32 is swept over depths 2..5 (Figure 6); everything else
		// runs once per mode.
		if q.Num == 32 {
			for depth := 2; depth <= 5; depth++ {
				pg.SetDepth(depth)
				if mode == ModeInteractive {
					m := r.timeQuery(exec, &q, pg.For(&q, 0, execRes))
					m.Query = q.Name + depthSuffix(depth)
					record(m)
				} else {
					record(r.batch(exec, &q, pg, execRes))
				}
			}
			pg.SetDepth(2)
		} else if mode == ModeInteractive {
			record(r.timeQuery(exec, &q, pg.For(&q, 0, execRes)))
		} else {
			record(r.batch(exec, &q, pg, execRes))
		}

		if exec != e {
			exec.Close()
		}
	}
	e.Close()
	return firstErr
}

func depthSuffix(d int) string {
	return "(d=" + strconv.Itoa(d) + ")"
}

// batch executes BatchSize iterations and reports the total time; one
// timeout or failure marks the whole batch, as in Figure 1(c). Count is
// that of the last successful iteration — a failed iteration must not
// overwrite it with its zero value.
//
// Non-mutating batches fan out across Config.CellWorkers goroutines:
// engines guarantee race-free concurrent reads (see core.Engine), and
// the iterations fold in index order — first error wins, Count taken
// from the last success before it — so the measurement is identical to
// a sequential batch. Mutating batches always run sequentially: the
// engines are single-writer, and concurrent destructive iterations
// would make the instance state depend on scheduling.
func (r *Runner) batch(e core.Engine, q *workload.Query, pg *ParamGen, res *core.LoadResult) Measurement {
	total := Measurement{Query: q.Name}
	if q.Num == 32 {
		total.Query = q.Name + depthSuffix(pg.depth)
	}
	start := r.now()
	// One context carries the whole batch's time budget; deriving it
	// here (rather than computing a time.Now-based deadline per
	// iteration) keeps the wall clock out of the measurement path.
	ctx, cancel := r.queryContext(r.cfg.Timeout * time.Duration(r.cfg.BatchSize))
	defer cancel()
	iterate := func(i int) (int64, error) {
		iter := i
		if q.Mutates {
			// Destructive iterations start at pool slot 1: slot 0 is the
			// interactive half's, and keeping the offset keeps batch
			// parameters identical whether or not the halves ever shared
			// an instance (they did before the micro cell was split).
			iter = i + 1
		}
		res2, err := q.Run(ctx, e, pg.For(q, iter, res))
		return res2.Count, err
	}
	if w := r.cfg.CellWorkers; w > 1 && !q.Mutates && concurrentReads(e) {
		counts := make([]int64, r.cfg.BatchSize)
		errs := make([]error, r.cfg.BatchSize)
		runPool(w, r.cfg.BatchSize, func(i int) { counts[i], errs[i] = iterate(i) })
		for i := 0; i < r.cfg.BatchSize; i++ {
			if errs[i] != nil {
				classify(&total, errs[i])
				break
			}
			total.Count = counts[i]
		}
	} else {
		for i := 0; i < r.cfg.BatchSize; i++ {
			count, err := iterate(i)
			if err != nil {
				classify(&total, err)
				break
			}
			total.Count = count
		}
	}
	total.Elapsed = r.since(start)
	return total
}

// concurrentReads reports whether e's read results are independent of
// read scheduling (engines veto fan-out via core.ConcurrentReader).
func concurrentReads(e core.Engine) bool {
	if cr, ok := e.(core.ConcurrentReader); ok {
		return cr.ConcurrentReads()
	}
	return true
}

// runIndexed builds the attribute index on the Q11 property and re-runs
// Q11 (Figure 4(c)). Engines without user indexes (BlazeGraph) are
// skipped, engines that accept but ignore the index (Sparksee,
// ArangoDB) run unchanged — both as the paper found.
func (r *Runner) runIndexed(c *cellResult, engine, dataset string) error {
	ds := r.dataset(dataset)
	pg := NewParamGen(ds.g, r.cfg.Seed)

	record := func(m Measurement) {
		m.Engine, m.Dataset, m.Mode = engine, dataset, ModeInteractive
		c.indexed = append(c.indexed, m)
	}
	recordDNF := func(err error) {
		record(dnf("Q11(idx)", err))
		record(dnf("Q5(idx)", err))
	}

	e, res, _, err := r.loadInto(engine, dataset)
	if err != nil {
		recordDNF(err)
		return err
	}
	defer e.Close()
	if err := e.BuildVertexPropIndex(pg.vPropName); err != nil {
		if err == core.ErrUnsupported {
			return nil
		}
		recordDNF(err)
		return err
	}
	q := workload.ByName("Q11")
	m := r.timeQuery(e, q, pg.For(q, 0, res))
	m.Query = "Q11(idx)"
	record(m)

	// Index maintenance overhead (Section 6.4: with indexes, CUD slows
	// by ~10%, up to ~30% for Neo 3.0 and ~100% for OrientDB): re-run
	// the property-insertion query against the indexed property.
	q5 := workload.ByName("Q5")
	p5 := pg.For(q5, 1, res)
	p5.NewPropName = pg.vPropName
	m5 := r.timeQuery(e, q5, p5)
	m5.Query = "Q5(idx)"
	record(m5)
	return nil
}

// runComplex executes the 13 LDBC-derived queries (Figure 2) on ldbc.
func (r *Runner) runComplex(c *cellResult, engine string) error {
	ds := r.dataset("ldbc")

	record := func(m Measurement) {
		m.Engine, m.Dataset, m.Mode = engine, "ldbc", ModeInteractive
		c.complex = append(c.complex, m)
	}

	e, res, _, err := r.loadInto(engine, "ldbc")
	if err != nil {
		for _, cq := range workload.ComplexQueries() {
			record(dnf(cq.Name, err))
		}
		return err
	}
	defer e.Close()
	cp := ComplexFor(ds.g, r.cfg.Seed, res)
	for _, cq := range workload.ComplexQueries() {
		ctx, cancel := r.queryContext(r.cfg.Timeout)
		start := r.now()
		res2, err := cq.Run(ctx, e, cp)
		m := Measurement{Query: cq.Name, Elapsed: r.since(start), Count: res2.Count}
		classify(&m, err)
		cancel()
		record(m)
	}
	return nil
}
