package harness

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/engines/sqlg"
	"repro/internal/remote"
)

// startWorker runs an in-process gdb-worker equivalent — remote.Server
// over WorkerHandler — on a localhost listener and returns its address.
func startWorker(t *testing.T, h *WorkerHandler, capacity int) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &remote.Server{Handler: h, Capacity: capacity, Heartbeat: 50 * time.Millisecond}
	go srv.Serve(l)
	t.Cleanup(srv.Close)
	return l.Addr().String()
}

// remoteCells counts the progress lines for cells dispatched to remote
// workers.
func remoteCells(t *testing.T, cfg Config) ([]byte, int) {
	t.Helper()
	var progress bytes.Buffer
	cfg.Progress = &progress
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportJSON(res, &buf); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, line := range strings.Split(progress.String(), "\n") {
		if strings.HasPrefix(line, "remote ") && strings.Contains(line, ": cell ") && !strings.Contains(line, "reassigned") {
			n++
		}
	}
	return buf.Bytes(), n
}

// TestRemoteGridByteIdentical is the acceptance contract of the remote
// subsystem: a grid split across two localhost workers produces
// ExportJSON output byte-identical to the same grid run purely
// locally under a frozen clock.
func TestRemoteGridByteIdentical(t *testing.T) {
	cfg := tinyConfig()
	cfg.BatchSize = 2
	cfg.FrozenClock = true
	cfg.Workers = 2

	local, _ := exportRun(t, cfg)

	w1 := startWorker(t, &WorkerHandler{}, 2)
	w2 := startWorker(t, &WorkerHandler{}, 2)
	cfg.Remote = []string{w1, w2}
	distributed, dispatched := remoteCells(t, cfg)

	if dispatched == 0 {
		t.Fatal("no cells were dispatched to the remote workers")
	}
	if !bytes.Equal(local, distributed) {
		t.Fatalf("distributed export diverges from local run:\nlocal       %d bytes\ndistributed %d bytes", len(local), len(distributed))
	}
}

// TestRemoteResumeByteIdentical: the remote path must compose with
// checkpoint/resume — a run interrupted mid-grid (checkpoint truncated
// to a prefix, the footprint of a crash) and resumed with remote
// workers restores the local cells and computes the rest remotely,
// and the export stays byte-identical. Cells computed on another
// machine flow through the same stream/checkpoint path, so a later
// all-local resume can replay them too.
func TestRemoteResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig()
	cfg.Datasets = []string{"frb-s"}
	cfg.BatchSize = 2
	cfg.FrozenClock = true

	cfg.CheckpointPath = filepath.Join(dir, "fresh.jsonl")
	fresh, _ := exportRun(t, cfg)

	// Interrupted local run: keep a 3-cell prefix of its checkpoint.
	cfg.CheckpointPath = filepath.Join(dir, "interrupted.jsonl")
	exportRun(t, cfg)
	raw, err := os.ReadFile(cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	const keep = 3
	if len(lines) < keep+2 {
		t.Fatalf("checkpoint too small: %d lines", len(lines))
	}
	if err := os.WriteFile(cfg.CheckpointPath, bytes.Join(lines[:1+keep], nil), 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume with a remote worker attached; the missing cells may run
	// on either side of the wire.
	cfg.Remote = []string{startWorker(t, &WorkerHandler{}, 2)}
	cfg.Resume = true
	resumed, _ := remoteCells(t, cfg)
	if !bytes.Equal(fresh, resumed) {
		t.Fatal("remote resume diverges from uninterrupted local run")
	}

	// The checkpoint now holds remotely-computed cells; a purely local
	// resume must replay them without executing anything.
	cfg.Remote = nil
	again, executed := exportRun(t, cfg)
	if executed != 0 {
		t.Fatalf("resume after remote run re-executed %d cells, want 0", executed)
	}
	if !bytes.Equal(fresh, again) {
		t.Fatal("replay of remotely-computed checkpoint diverges")
	}
}

// crashingWorker is a raw fake worker speaking the wire format
// directly: it accepts the handshake, takes one cell, and drops the
// connection — a worker crash mid-cell. Reimplementing the framing
// here (length prefix + tagged JSON) also pins the format
// independently of the remote package.
func crashingWorker(t *testing.T, accepted chan<- struct{}) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })

	readFrame := func(conn net.Conn) map[string]json.RawMessage {
		var hdr [4]byte
		if _, err := conn.Read(hdr[:]); err != nil {
			return nil
		}
		body := make([]byte, binary.BigEndian.Uint32(hdr[:]))
		for off := 0; off < len(body); {
			n, err := conn.Read(body[off:])
			if err != nil {
				return nil
			}
			off += n
		}
		var f map[string]json.RawMessage
		if json.Unmarshal(body, &f) != nil {
			return nil
		}
		return f
	}
	writeFrame := func(conn net.Conn, v any) {
		body, err := json.Marshal(v)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4+len(body))
		binary.BigEndian.PutUint32(buf, uint32(len(body)))
		copy(buf[4:], body)
		conn.Write(buf)
	}

	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if f := readFrame(conn); f == nil || string(f["type"]) != `"hello"` {
			t.Error("crashing worker: no hello frame")
			return
		}
		// Advertise enough slots to be offered cells even on a
		// single-CPU box where the local worker starts first. The fake
		// never emits heartbeats, so the advertised interval must be
		// generous enough that the scheduler's stall deadline does not
		// declare it dead while the datasets are still being generated
		// — the crash must be observed on the dropped connection, mid-
		// cell, not on a pre-grid liveness timeout.
		writeFrame(conn, map[string]any{
			"type":    "welcome",
			"welcome": map[string]any{"ok": true, "capacity": 4, "heartbeat_ns": int64(5 * time.Second)},
		})
		// Take one cell, then die without answering; any further cells
		// in flight die with the connection.
		if f := readFrame(conn); f != nil {
			close(accepted)
		}
	}()
	return l.Addr().String()
}

// TestRemoteWorkerCrashReassignedLocally: a worker that dies mid-cell
// must have its cell reassigned to the local queue, and the final
// export must be byte-identical to an all-local run — a crash costs
// wall-clock time, never results.
func TestRemoteWorkerCrashReassignedLocally(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"frb-s"}
	cfg.BatchSize = 2
	cfg.FrozenClock = true
	// One local worker: while it executes its first cell, the fake
	// worker's slots take cells from the shared queue, so the crash
	// path is exercised deterministically even on one CPU.
	cfg.Workers = 1

	local, _ := exportRun(t, cfg)

	accepted := make(chan struct{})
	cfg.Remote = []string{crashingWorker(t, accepted)}

	var progress bytes.Buffer
	cfg.Progress = &progress
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-accepted:
	default:
		t.Fatal("the crashing worker never received a cell")
	}
	if !strings.Contains(progress.String(), "reassigned locally") {
		t.Fatalf("no reassignment recorded in progress:\n%s", progress.String())
	}
	var buf bytes.Buffer
	if err := ExportJSON(res, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local, buf.Bytes()) {
		t.Fatal("export after worker crash diverges from all-local run")
	}
}

// TestRemoteWorkerCrashWithSecondRemote: when one of two remote
// workers dies mid-cell, the grid must still complete byte-identically
// — the dead worker's cell is requeued (to the surviving remote when
// its slots are still live, else locally; the scheduler-level
// preference is pinned by TestSchedulerRequeuePrefersAnotherRemote)
// and the dead worker never sees it again.
func TestRemoteWorkerCrashWithSecondRemote(t *testing.T) {
	// Both tiny datasets: the 10-cell grid exceeds the slot count
	// (4 crasher + 2 healthy + 1 local), so every slot — including the
	// crasher's — is guaranteed to receive a cell at the start.
	cfg := tinyConfig()
	cfg.BatchSize = 2
	cfg.FrozenClock = true
	cfg.Workers = 1

	local, _ := exportRun(t, cfg)

	accepted := make(chan struct{})
	cfg.Remote = []string{crashingWorker(t, accepted), startWorker(t, &WorkerHandler{}, 2)}

	var progress bytes.Buffer
	cfg.Progress = &progress
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-accepted:
	default:
		t.Fatal("the crashing worker never received a cell")
	}
	if !strings.Contains(progress.String(), "reassigned") {
		t.Fatalf("no reassignment recorded in progress:\n%s", progress.String())
	}
	var buf bytes.Buffer
	if err := ExportJSON(res, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local, buf.Bytes()) {
		t.Fatal("export after worker crash diverges from all-local run")
	}
}

// TestRemoteHandshakeRejectsMismatchedCatalog: a worker whose catalog
// fingerprint differs (different engine/dataset catalogs or record
// versions) must fail the run up front — silently mixing measurements
// from diverged builds is the one thing the handshake exists to
// prevent.
func TestRemoteHandshakeRejectsMismatchedCatalog(t *testing.T) {
	addr := startWorker(t, &WorkerHandler{Catalog: "some-other-build"}, 1)
	cfg := tinyConfig()
	cfg.Datasets = []string{"frb-s"}
	cfg.Remote = []string{addr}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("mismatched worker accepted: %v", err)
	}
}

// TestRemoteErrorsFatalParity: under ErrorsFatal the grid must abort
// on a failing engine no matter where its cell ran — workers always
// record DNF and carry on, so the scheduler restores the abort when
// the remote result comes back fatal.
func TestRemoteErrorsFatalParity(t *testing.T) {
	unregister := engines.Register("fail-load-remote", func() core.Engine {
		return &failLoadEngine{sqlg.New()}
	})
	defer unregister()

	cfg := tinyConfig()
	cfg.Engines = []string{"fail-load-remote", "sqlg"}
	cfg.Datasets = []string{"frb-s"}
	cfg.BatchSize = 2
	cfg.FrozenClock = true
	cfg.ErrorsFatal = true
	cfg.Workers = 1
	cfg.Remote = []string{startWorker(t, &WorkerHandler{}, 4)}

	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil || !strings.Contains(err.Error(), "synthetic load failure") {
		t.Fatalf("ErrorsFatal grid with a failing engine did not abort: %v", err)
	}
}

// TestWorkerSessionVerifiesPlan: the worker must refuse a cell whose
// spec disagrees with its own plan — the backstop against index drift.
func TestWorkerSessionVerifiesPlan(t *testing.T) {
	cfg := tinyConfig()
	fp := mustFingerprint(t, cfg)
	h := &WorkerHandler{}
	raw, err := json.Marshal(fp)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := h.Accept(remote.Hello{Catalog: CatalogFingerprint(), Config: raw}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute(remote.CellSpec{Index: 0, Kind: "micro", Engine: "no-such", Dataset: "frb-s"}); err == nil || !strings.Contains(err.Error(), "plan mismatch") {
		t.Fatalf("mismatched cell spec accepted: %v", err)
	}
	if _, err := sess.Execute(remote.CellSpec{Index: 10_000, Kind: "micro", Engine: "neo-1.9", Dataset: "frb-s"}); err == nil {
		t.Fatal("out-of-plan index accepted")
	}
}

// mustFingerprint derives the wire fingerprint for a config the way
// Run does.
func mustFingerprint(t *testing.T, cfg Config) Fingerprint {
	t.Helper()
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r.fingerprint(len(r.planJobs()))
}
