package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// cellRecord is the streamed form of one completed grid cell: one JSONL
// line in the checkpoint file, keyed by the deterministic plan index.
// Measurements round-trip exactly (durations are nanosecond integers),
// which is what makes a resumed run's export byte-identical to an
// uninterrupted one.
type cellRecord struct {
	Index   int               `json:"i"`
	Loads   []LoadMeasurement `json:"loads,omitempty"`
	Micro   []Measurement     `json:"micro,omitempty"`
	Indexed []Measurement     `json:"indexed,omitempty"`
	Complex []Measurement     `json:"complex,omitempty"`
}

func (rec *cellRecord) cell() cellResult {
	return cellResult{loads: rec.Loads, micro: rec.Micro, indexed: rec.Indexed, complex: rec.Complex}
}

func asRecord(i int, c cellResult) cellRecord {
	return cellRecord{Index: i, Loads: c.loads, Micro: c.micro, Indexed: c.indexed, Complex: c.complex}
}

// checkpointWriter streams completed cells to the checkpoint file as
// workers finish. Every record is flushed and fsynced before write
// returns, so a crash loses at most the cell being written — and the
// loader tolerates that torn line.
type checkpointWriter struct {
	mu       sync.Mutex
	f        *os.File
	enc      *json.Encoder
	streamed int   // cells written by this run (excludes replayed ones)
	err      error // first write error; surfaced after the grid drains
}

// newCheckpointWriter creates (or rewrites) the checkpoint at path:
// header line first, then the recovered cells of the interrupted run in
// index order. Rewriting — rather than appending — scrubs any torn
// trailing line left by the crash, so the file is always a clean prefix
// of records; the rewrite goes through a temp file renamed over the
// original, so a crash *during* the rewrite still leaves the previous
// checkpoint intact rather than a truncated one.
func newCheckpointWriter(path string, fp Fingerprint, recovered map[int]cellResult) (*checkpointWriter, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("harness: checkpoint: %w", err)
	}
	fail := func(err error) (*checkpointWriter, error) {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("harness: checkpoint: %w", err)
	}
	w := &checkpointWriter{f: f, enc: json.NewEncoder(f)}
	if err := w.enc.Encode(fp); err != nil {
		return fail(err)
	}
	idx := make([]int, 0, len(recovered))
	for i := range recovered {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	for _, i := range idx {
		if err := w.enc.Encode(asRecord(i, recovered[i])); err != nil {
			return fail(err)
		}
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	// The open handle keeps following the file across the rename, so
	// subsequent writes append to the now-published checkpoint.
	if err := os.Rename(tmp, path); err != nil {
		return fail(err)
	}
	return w, nil
}

// write streams one completed cell and returns how many cells this run
// has durably streamed so far. Safe for concurrent workers. On error
// the caller must stop the grid: later cells would not be durable, and
// completing a multi-hour run whose results cannot be exported safely
// is worse than failing fast (everything already streamed remains
// resumable).
func (w *checkpointWriter) write(i int, c cellResult) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		if err := w.enc.Encode(asRecord(i, c)); err != nil {
			w.err = fmt.Errorf("harness: checkpoint: %w", err)
		} else if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("harness: checkpoint: %w", err)
		}
	}
	if w.err != nil {
		return w.streamed, w.err
	}
	w.streamed++
	return w.streamed, nil
}

// firstErr returns the first write error, if any.
func (w *checkpointWriter) firstErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *checkpointWriter) close() { w.f.Close() }
