package harness

import (
	"sync"
	"testing"
	"time"
)

// TestSchedulerRequeuePrefersAnotherRemote pins the requeue contract:
// a cell whose remote executor died is first offered to a different
// live remote (with the dead one excluded from ever seeing it again),
// and falls back to the local-only queue only when every live remote
// has failed it.
func TestSchedulerRequeuePrefersAnotherRemote(t *testing.T) {
	s := newCellScheduler([]int{0, 1, 2})
	const workerA, workerB = 0, 1
	s.registerRemoteSlot(workerA)
	s.registerRemoteSlot(workerB)

	i, ok := s.nextRemote(workerA)
	if !ok || i != 0 {
		t.Fatalf("nextRemote(A) = %d,%v, want 0,true", i, ok)
	}
	// A dies mid-cell: with B live, the cell must stay remotely
	// retriable and must jump the queue (it is the oldest cell).
	if !s.requeueRemote(0, workerA) {
		t.Fatal("requeue with another live remote went local")
	}
	// A (or a second slot of A) must never see cell 0 again.
	if i, ok := s.nextRemote(workerA); !ok || i != 1 {
		t.Fatalf("nextRemote(A) after requeue = %d,%v, want 1,true (cell 0 excluded)", i, ok)
	}
	// B gets the requeued cell first.
	if i, ok := s.nextRemote(workerB); !ok || i != 0 {
		t.Fatalf("nextRemote(B) = %d,%v, want 0,true", i, ok)
	}
	// B dies on it too: no other live remote remains (A is excluded),
	// so now it goes to the local-only queue.
	if s.requeueRemote(0, workerB) {
		t.Fatal("requeue with every live remote excluded stayed remote")
	}
	// No remote may take it from there; a local worker must.
	if i, ok := s.nextRemote(workerB); !ok || i != 2 {
		t.Fatalf("nextRemote(B) = %d,%v, want 2,true (cell 0 is local-only)", i, ok)
	}
	if i, ok := s.nextLocal(); !ok || i != 0 {
		t.Fatalf("nextLocal = %d,%v, want 0,true", i, ok)
	}
	s.done() // cell 0 done locally
	s.done() // cell 1 (A)
	s.done() // cell 2 (B)
	if _, ok := s.nextRemote(workerA); ok {
		t.Fatal("drained scheduler handed a remote a cell")
	}
	if _, ok := s.nextLocal(); ok {
		t.Fatal("drained scheduler handed a local worker a cell")
	}
}

// TestSchedulerRequeueAfterRemoteRetired: when the only other remote
// has already retired its slots, a failed cell must go straight to the
// local queue — there is no live remote to wait for.
func TestSchedulerRequeueAfterRemoteRetired(t *testing.T) {
	s := newCellScheduler([]int{0})
	const workerA, workerB = 0, 1
	s.registerRemoteSlot(workerA)
	s.registerRemoteSlot(workerB)

	i, ok := s.nextRemote(workerA)
	if !ok || i != 0 {
		t.Fatalf("nextRemote(A) = %d,%v, want 0,true", i, ok)
	}
	// B's slot retires (shared queue was empty when it looked).
	s.retireRemoteSlot(workerB)
	if s.requeueRemote(0, workerA) {
		t.Fatal("requeue stayed remote although the other remote retired")
	}
	if i, ok := s.nextLocal(); !ok || i != 0 {
		t.Fatalf("nextLocal = %d,%v, want 0,true", i, ok)
	}
	s.done()
}

// TestSchedulerLocalWakesOnRetire: a local worker blocked on an
// in-flight remote cell must wake up when the cell lands in a queue it
// can serve — even via the remote-retirement path.
func TestSchedulerLocalWakesOnRetire(t *testing.T) {
	s := newCellScheduler([]int{0})
	const workerA = 0
	s.registerRemoteSlot(workerA)
	if _, ok := s.nextRemote(workerA); !ok {
		t.Fatal("no cell for remote")
	}

	got := make(chan int, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i, ok := s.nextLocal()
		if ok {
			got <- i
			s.done()
		}
	}()
	// Give the local worker a moment to block, then fail the cell on
	// the only remote: it must land locally and wake the worker.
	time.Sleep(10 * time.Millisecond)
	if s.requeueRemote(0, workerA) {
		t.Error("requeue stayed remote with a single excluded remote")
	}
	s.retireRemoteSlot(workerA)
	select {
	case i := <-got:
		if i != 0 {
			t.Fatalf("local worker got cell %d, want 0", i)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("local worker never woke up for the requeued cell")
	}
	wg.Wait()
}
