package harness

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/engines/sqlg"
)

// TestStatusCounts: -status must reconstruct the plan from the
// checkpoint header alone and report done/remaining/DNF per engine —
// without executing (or generating) anything.
func TestStatusCounts(t *testing.T) {
	unregister := engines.Register("fail-load-status", func() core.Engine {
		return &failLoadEngine{sqlg.New()}
	})
	defer unregister()

	dir := t.TempDir()
	cfg := tinyConfig()
	cfg.Engines = []string{"fail-load-status", "sqlg"}
	cfg.Datasets = []string{"frb-s"}
	cfg.BatchSize = 2
	cfg.FrozenClock = true
	cfg.CheckpointPath = filepath.Join(dir, "cp.jsonl")
	exportRun(t, cfg)

	st, err := ReadStatus(cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	// 2 engines × (micro-i + micro-b + indexed) on one dataset.
	if st.Total != 6 || st.Done != 6 || st.Remaining() != 0 {
		t.Fatalf("complete run: total=%d done=%d remaining=%d, want 6/6/0", st.Total, st.Done, st.Remaining())
	}
	if st.DNF == 0 {
		t.Fatal("fail-load engine produced no DNF cells in the status")
	}
	if len(st.Engines) != 2 {
		t.Fatalf("engines = %d, want 2", len(st.Engines))
	}
	byName := map[string]EngineStatus{}
	for _, es := range st.Engines {
		byName[es.Engine] = es
	}
	if es := byName["fail-load-status"]; es.DNF == 0 || es.Done != es.Total {
		t.Fatalf("failing engine status: %+v", es)
	}
	if es := byName["sqlg"]; es.DNF != 0 || es.Done != es.Total {
		t.Fatalf("healthy engine status: %+v", es)
	}

	// Truncate to a 1-cell prefix: the status must show the remainder.
	raw, err := os.ReadFile(cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if err := os.WriteFile(cfg.CheckpointPath, bytes.Join(lines[:2], nil), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err = ReadStatus(cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 || st.Remaining() != 5 {
		t.Fatalf("truncated run: done=%d remaining=%d, want 1/5", st.Done, st.Remaining())
	}

	var out bytes.Buffer
	st.Render(&out)
	s := out.String()
	for _, want := range []string{"1/6 cells done", "5 remaining", "fail-load-status", "sqlg", "frozen-clock"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered status missing %q:\n%s", want, s)
		}
	}
}

func TestStatusErrors(t *testing.T) {
	if _, err := ReadStatus(filepath.Join(t.TempDir(), "absent.jsonl")); err == nil || !strings.Contains(err.Error(), "no checkpoint") {
		t.Fatalf("missing checkpoint: %v", err)
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStatus(empty); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("empty checkpoint: %v", err)
	}

	// A checkpoint from a different record-format version must be
	// refused, as resume refuses it — not silently miscounted.
	stale := filepath.Join(t.TempDir(), "stale.jsonl")
	header := fmt.Sprintf(`{"version":%d,"engines":["sqlg"],"datasets":["frb-s"],"jobs":2}`+"\n", checkpointVersion+1)
	if err := os.WriteFile(stale, []byte(header), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStatus(stale); err == nil || !strings.Contains(err.Error(), "record format") {
		t.Fatalf("stale-version checkpoint accepted: %v", err)
	}

	// So must a header whose plan length disagrees with this build's.
	drifted := filepath.Join(t.TempDir(), "drifted.jsonl")
	header = fmt.Sprintf(`{"version":%d,"engines":["sqlg"],"datasets":["frb-s"],"jobs":7}`+"\n", checkpointVersion)
	if err := os.WriteFile(drifted, []byte(header), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStatus(drifted); err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("plan-drifted checkpoint accepted: %v", err)
	}
}

// TestStatusSharedWithResume: the same reader serves resume and
// status, so a checkpoint readable by one is readable by the other.
func TestStatusSharedWithResume(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig()
	cfg.Datasets = []string{"frb-s"}
	cfg.BatchSize = 2
	cfg.FrozenClock = true
	cfg.CheckpointPath = filepath.Join(dir, "cp.jsonl")
	exportRun(t, cfg)

	st, err := ReadStatus(cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	fp := mustFingerprint(t, cfg)
	if !st.Fingerprint.equal(fp) {
		t.Fatal("status fingerprint diverges from the run's")
	}
	if errors.Is(err, os.ErrNotExist) {
		t.Fatal("unreachable")
	}
}
