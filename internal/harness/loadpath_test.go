package harness

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/datasets"
	"repro/internal/engines"
	"repro/internal/graphson"
	"repro/internal/gremlin"
)

// TestGraphSONLoadPath exercises the paper's Q1 end to end: generate a
// dataset, serialize it to GraphSON (the suite's common input format),
// parse it back, bulk load the parsed graph into every engine, and
// verify the loaded graphs answer identically to ones loaded directly.
func TestGraphSONLoadPath(t *testing.T) {
	g := datasets.ByName("yeast").Generate(0.05)
	var buf bytes.Buffer
	if err := graphson.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	parsed, err := graphson.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NumVertices() != g.NumVertices() || parsed.NumEdges() != g.NumEdges() {
		t.Fatalf("GraphSON round trip: %d/%d vs %d/%d",
			parsed.NumVertices(), parsed.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	ctx := context.Background()
	for _, name := range engines.Names() {
		direct, err := engines.New(name)
		if err != nil {
			t.Fatal(err)
		}
		viaJSON, _ := engines.New(name)
		if _, err := direct.BulkLoad(g); err != nil {
			t.Fatalf("%s: direct load: %v", name, err)
		}
		if _, err := viaJSON.BulkLoad(parsed); err != nil {
			t.Fatalf("%s: graphson load: %v", name, err)
		}
		gd, gj := gremlin.New(direct), gremlin.New(viaJSON)
		nd, _ := gd.V().Count(ctx)
		nj, _ := gj.V().Count(ctx)
		ed, _ := gd.E().Count(ctx)
		ej, _ := gj.E().Count(ctx)
		if nd != nj || ed != ej {
			t.Fatalf("%s: loads diverge: V %d/%d E %d/%d", name, nd, nj, ed, ej)
		}
		ld, _ := gd.E().DistinctLabels(ctx)
		lj, _ := gj.E().DistinctLabels(ctx)
		if len(ld) != len(lj) {
			t.Fatalf("%s: label sets diverge: %d vs %d", name, len(ld), len(lj))
		}
		direct.Close()
		viaJSON.Close()
	}
}
