package harness

import (
	"sort"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/workload"
)

// paramPoolPerQuery reserves this many distinct picks per query so that
// batch iterations of destructive queries never collide with each other
// or with other queries' targets.
const paramPoolPerQuery = 64

// ParamGen derives per-query, per-iteration parameters from the dataset
// graph — never from an engine — and translates them to engine IDs via
// the engine's LoadResult. The same (dataset, seed) therefore yields
// the same logical choices for every engine, which is the paper's
// fairness requirement.
//
// After construction a ParamGen is read-only except for SetDepth, so
// For may be called from concurrent batch iterations (Config.
// CellWorkers); SetDepth must only be called between batches.
type ParamGen struct {
	g     *core.Graph
	picks datasets.Picks

	label      string
	vPropName  string
	vPropValue core.Value
	ePropName  string
	ePropValue core.Value
	k          int64
	depth      int
}

// NewParamGen draws the dataset-level choices.
func NewParamGen(g *core.Graph, seed int64) *ParamGen {
	pg := &ParamGen{
		g: g,
		// Enough picks for every query's pool plus headroom.
		picks: datasets.Pick(g, seed, paramPoolPerQuery*40),
		depth: 2,
	}
	// Label: the label of the first picked edge.
	if len(pg.picks.Edges) > 0 {
		pg.label = g.EdgeL[pg.picks.Edges[0]].Label
	}
	// Vertex property: the lexicographically first property of the
	// first picked vertex that carries one.
	for _, v := range pg.picks.Vertices {
		if name, val, ok := firstProp(g.VProps[v]); ok {
			pg.vPropName, pg.vPropValue = name, val
			break
		}
	}
	// Edge property: same over picked edges. Datasets without edge
	// properties (all but ldbc) get a never-matching probe, as in the
	// paper where such searches return empty.
	pg.ePropName, pg.ePropValue = "absent", core.I(-1)
	for _, ei := range pg.picks.Edges {
		if name, val, ok := firstProp(g.EdgeL[ei].Props); ok {
			pg.ePropName, pg.ePropValue = name, val
			break
		}
	}
	// Degree threshold: twice the average degree, at least 2.
	if g.NumVertices() > 0 {
		pg.k = int64(4 * g.NumEdges() / g.NumVertices())
	}
	if pg.k < 2 {
		pg.k = 2
	}
	return pg
}

func firstProp(p core.Props) (string, core.Value, bool) {
	if len(p) == 0 {
		return "", core.Nil, false
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys[0], p[keys[0]], true
}

// SetDepth overrides the BFS depth (Figure 6 sweeps 2–5).
func (pg *ParamGen) SetDepth(d int) { pg.depth = d }

// VPropName exposes the chosen Q11 property name (the one the indexed
// experiment builds its index on).
func (pg *ParamGen) VPropName() string { return pg.vPropName }

// DatasetVertexIndex returns the dataset vertex index behind the pool
// slot (q, iter) — used by benchmarks that recreate deleted vertices.
func (pg *ParamGen) DatasetVertexIndex(q *workload.Query, iter int) int {
	return pg.vertexAt(q.Num, iter, 0)
}

// vertexAt returns the dataset vertex index for pool slot (q, iter, off).
func (pg *ParamGen) vertexAt(qNum, iter, off int) int {
	i := (qNum*3+off)*paramPoolPerQuery + iter
	return pg.picks.Vertices[i%len(pg.picks.Vertices)]
}

func (pg *ParamGen) edgeAt(qNum, iter int) int {
	i := qNum*paramPoolPerQuery + iter
	return pg.picks.Edges[i%len(pg.picks.Edges)]
}

// For builds the parameters for one execution of q. iter distinguishes
// batch iterations: destructive queries get disjoint targets per
// iteration.
func (pg *ParamGen) For(q *workload.Query, iter int, res *core.LoadResult) workload.Params {
	p := workload.Params{
		Label:        pg.label,
		VPropName:    pg.vPropName,
		VPropValue:   pg.vPropValue,
		EPropName:    pg.ePropName,
		EPropValue:   pg.ePropValue,
		NewPropName:  "bench_new",
		NewPropValue: core.I(int64(iter)),
		NewVertex:    core.Props{"bench_name": core.S("created"), "bench_iter": core.I(int64(iter))},
		NewEdgeProps: core.Props{"bench_w": core.I(int64(iter))},
		K:            pg.k,
		Depth:        pg.depth,
	}
	// Non-destructive per-vertex queries reuse the same target across
	// iterations (the paper measures the same op repeatedly); the
	// destructive ones draw from their reserved pool.
	stableIter := 0
	if q.Mutates {
		stableIter = iter
	}
	if len(pg.picks.Vertices) > 0 {
		p.V = res.VertexIDs[pg.vertexAt(q.Num, stableIter, 0)]
		p.V2 = res.VertexIDs[pg.vertexAt(q.Num, stableIter, 1)]
	}
	if len(pg.picks.Edges) > 0 {
		p.E = res.EdgeIDs[pg.edgeAt(q.Num, stableIter)]
	}
	// Q16/Q20 need an existing vertex property on the target; Q17/Q21
	// an existing edge property. Retarget onto objects that have them.
	switch q.Num {
	case 16, 20:
		if v, ok := pg.vertexWithProp(stableIter); ok {
			p.V = res.VertexIDs[v]
			p.VPropName, _, _ = firstProp(pg.g.VProps[v])
		}
	case 17, 21:
		if ei, ok := pg.edgeWithProp(stableIter); ok {
			p.E = res.EdgeIDs[ei]
			p.EPropName, _, _ = firstProp(pg.g.EdgeL[ei].Props)
		}
	}
	return p
}

func (pg *ParamGen) vertexWithProp(iter int) (int, bool) {
	seen := 0
	for _, v := range pg.picks.Vertices {
		if len(pg.g.VProps[v]) > 0 {
			if seen == iter {
				return v, true
			}
			seen++
		}
	}
	return 0, false
}

func (pg *ParamGen) edgeWithProp(iter int) (int, bool) {
	seen := 0
	for _, ei := range pg.picks.Edges {
		if len(pg.g.EdgeL[ei].Props) > 0 {
			if seen == iter {
				return ei, true
			}
			seen++
		}
	}
	return 0, false
}

// ComplexFor draws the complex-workload parameters from the ldbc graph.
func ComplexFor(g *core.Graph, seed int64, res *core.LoadResult) workload.ComplexParams {
	byKind := map[string][]int{}
	for i, p := range g.VProps {
		if k, ok := p["kind"]; ok {
			byKind[k.Str()] = append(byKind[k.Str()], i)
		}
	}
	rng := datasets.Pick(g, seed, 8) // reuse the deterministic picker for ordering
	pick := func(kind string, n int) int {
		s := byKind[kind]
		if len(s) == 0 {
			return 0
		}
		return s[n%len(s)]
	}
	// A person with friends: prefer one that has outgoing knows edges.
	person := pick("person", 0)
	// The snapshot's per-label slice walks exactly the knows edges
	// instead of scanning and comparing all |E| labels.
	outKnows := map[int]int{}
	for _, ei := range g.Snapshot().EdgesWithLabel("knows") {
		outKnows[g.EdgeL[ei].Src]++
	}
	best := person
	for _, v := range byKind["person"] {
		if outKnows[v] > outKnows[best] {
			best = v
		}
	}
	person = best
	_ = rng
	cp := workload.ComplexParams{
		Person:     res.VertexIDs[person],
		City:       res.VertexIDs[pick("place", 0)],
		University: res.VertexIDs[pick("university", 0)],
		Company:    res.VertexIDs[pick("company", 0)],
		NewPerson: core.Props{
			"kind": core.S("person"), "firstName": core.S("Bench"),
			"lastName": core.S("User"), "uid": core.I(int64(g.NumVertices()) + 1),
		},
		K: 5,
	}
	for i := 0; i < 3; i++ {
		cp.Tags = append(cp.Tags, res.VertexIDs[pick("tag", i)])
	}
	return cp
}
