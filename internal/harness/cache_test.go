package harness

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// exportRunProgress is exportRun plus the raw progress log, for tests
// that assert on dataset acquisition lines.
func exportRunProgress(t *testing.T, cfg Config) ([]byte, string) {
	t.Helper()
	var progress bytes.Buffer
	cfg.Progress = &progress
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportJSON(res, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), progress.String()
}

// TestDatasetCacheWarmRunByteIdentical is the acceptance contract of
// the artifact cache: with DatasetCacheDir set, a second run of the
// same grid must produce a byte-identical export while acquiring every
// dataset from the warm cache — no generation at all — and both must
// match an uncached run exactly.
func TestDatasetCacheWarmRunByteIdentical(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"frb-s"}
	cfg.BatchSize = 2
	cfg.FrozenClock = true
	cfg.Workers = 2

	uncached, _ := exportRunProgress(t, cfg)

	cfg.DatasetCacheDir = t.TempDir()
	cold, coldLog := exportRunProgress(t, cfg)
	if !strings.Contains(coldLog, "generated") || !strings.Contains(coldLog, "snapshot cached") {
		t.Fatalf("cold run did not generate+cache:\n%s", coldLog)
	}
	if !bytes.Equal(uncached, cold) {
		t.Fatal("cold cached run diverges from uncached run")
	}

	warm, warmLog := exportRunProgress(t, cfg)
	if strings.Contains(warmLog, "generated") {
		t.Fatalf("warm run regenerated a dataset:\n%s", warmLog)
	}
	if !strings.Contains(warmLog, "warm cache hit") {
		t.Fatalf("warm run did not report a cache hit:\n%s", warmLog)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("warm run export diverges from cold run")
	}

	// Mmap is the same contract once more: a mapped warm run must be
	// byte-identical to the heap-decode runs (and to the uncached one).
	cfg.Mmap = true
	mapped, mappedLog := exportRunProgress(t, cfg)
	if strings.Contains(mappedLog, "generated") {
		t.Fatalf("mapped warm run regenerated a dataset:\n%s", mappedLog)
	}
	if !bytes.Equal(cold, mapped) {
		t.Fatal("mapped warm run export diverges from heap-decode run")
	}
}

// TestWorkerHandlerDatasetCache: a gdb-worker pointed at a cache
// directory must populate it on the first accepted run and serve the
// next run's graphs from it, without changing any result bytes.
func TestWorkerHandlerDatasetCache(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"frb-s"}
	cfg.BatchSize = 2
	cfg.FrozenClock = true
	cfg.Workers = 1

	local, _ := exportRunProgress(t, cfg)

	dir := t.TempDir()
	var workerLog bytes.Buffer
	h := &WorkerHandler{DatasetCacheDir: dir, Progress: &workerLog}
	cfg.Remote = []string{startWorker(t, h, 2)}
	distributed, dispatched := remoteCells(t, cfg)
	if dispatched == 0 {
		t.Fatal("no cells reached the worker")
	}
	if !bytes.Equal(local, distributed) {
		t.Fatal("worker with dataset cache diverges from local run")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("worker did not populate its dataset cache")
	}

	// A second scheduler run against the same worker handler: the
	// handler caches its Runner per fingerprint, so force a fresh
	// Runner by using a new handler over the same cache dir — its
	// first dataset acquisition must be a warm hit.
	var workerLog2 bytes.Buffer
	h2 := &WorkerHandler{DatasetCacheDir: dir, Progress: &workerLog2}
	cfg.Remote = []string{startWorker(t, h2, 2)}
	distributed2, _ := remoteCells(t, cfg)
	if !bytes.Equal(local, distributed2) {
		t.Fatal("warm-cache worker run diverges from local run")
	}
	if log := workerLog2.String(); strings.Contains(log, "generated") {
		t.Fatalf("second worker regenerated a dataset:\n%s", log)
	}
}
