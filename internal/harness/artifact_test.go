package harness

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datasets"
)

// syncBuffer is a goroutine-safe progress sink: the worker runner
// writes per-cell lines from executor goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRemoteColdWorkerFetchesArtifacts is the acceptance contract of
// artifact shipping: a worker with an empty dataset cache pointed at
// an artifact-serving scheduler must acquire every dataset over the
// wire — no local generation — land the artifacts in its cache
// byte-identical to the scheduler's, and produce an export
// byte-identical to an all-local run.
func TestRemoteColdWorkerFetchesArtifacts(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"frb-s"}
	cfg.BatchSize = 2
	cfg.FrozenClock = true
	cfg.Workers = 1

	local, _ := exportRun(t, cfg)

	schedCache, workerCache := t.TempDir(), t.TempDir()
	workerProgress := &syncBuffer{}
	h := &WorkerHandler{
		DatasetCacheDir: workerCache,
		FetchArtifacts:  true,
		Progress:        workerProgress,
	}
	cfg.Remote = []string{startWorker(t, h, 4)}
	cfg.ServeArtifacts = true
	cfg.DatasetCacheDir = schedCache
	distributed, dispatched := remoteCells(t, cfg)

	if dispatched == 0 {
		t.Fatal("no cells were dispatched to the remote worker")
	}
	wp := workerProgress.String()
	if !strings.Contains(wp, "fetched frb-s from scheduler") {
		t.Fatalf("worker did not fetch the dataset artifact:\n%s", wp)
	}
	if strings.Contains(wp, "generated") {
		t.Fatalf("cold worker generated a dataset despite artifact shipping:\n%s", wp)
	}
	if !bytes.Equal(local, distributed) {
		t.Fatal("cold-fleet export diverges from all-local run")
	}

	// The shipped artifact must be byte-identical to the scheduler's —
	// the worker's cache is now warm with the exact same content.
	spec := datasets.ByName("frb-s")
	fp := datasets.SnapshotFingerprint("frb-s", cfg.Scale, spec.Seed)
	schedArt, err := os.ReadFile(datasets.SnapshotPath(schedCache, "frb-s", fp))
	if err != nil {
		t.Fatalf("scheduler cache not populated: %v", err)
	}
	workerArt, err := os.ReadFile(datasets.SnapshotPath(workerCache, "frb-s", fp))
	if err != nil {
		t.Fatalf("worker cache not populated by the fetch: %v", err)
	}
	if !bytes.Equal(schedArt, workerArt) {
		t.Fatal("shipped artifact differs from the scheduler's")
	}
}

// TestRemoteColdWorkerFetchesWithoutSchedulerCache: a scheduler with
// no -dataset-cache of its own still serves artifacts by encoding its
// in-memory graphs onto the wire; the worker cannot tell the
// difference.
func TestRemoteColdWorkerFetchesWithoutSchedulerCache(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"frb-s"}
	cfg.BatchSize = 2
	cfg.FrozenClock = true
	cfg.Workers = 1

	local, _ := exportRun(t, cfg)

	workerProgress := &syncBuffer{}
	h := &WorkerHandler{
		DatasetCacheDir: t.TempDir(),
		FetchArtifacts:  true,
		Progress:        workerProgress,
	}
	cfg.Remote = []string{startWorker(t, h, 4)}
	cfg.ServeArtifacts = true
	distributed, dispatched := remoteCells(t, cfg)

	if dispatched == 0 {
		t.Fatal("no cells were dispatched to the remote worker")
	}
	wp := workerProgress.String()
	if !strings.Contains(wp, "fetched frb-s from scheduler") || strings.Contains(wp, "generated") {
		t.Fatalf("worker acquisition went wrong:\n%s", wp)
	}
	if !bytes.Equal(local, distributed) {
		t.Fatal("export diverges when artifacts are served from memory")
	}
}

// TestOpenArtifactRefusesForeignRequests: the scheduler only serves
// the artifacts its own grid uses — a dataset outside the run or a
// fingerprint that disagrees with the run's scale/seed is refused, and
// the refusal travels back as the worker's generate-locally cue.
func TestOpenArtifactRefusesForeignRequests(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"frb-s"}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := datasets.ByName("frb-s")
	good := datasets.SnapshotFingerprint("frb-s", cfg.Scale, spec.Seed)

	if _, err := r.OpenArtifact("ldbc", good); err == nil || !strings.Contains(err.Error(), "not part of this run") {
		t.Fatalf("foreign dataset served: %v", err)
	}
	bad := datasets.SnapshotFingerprint("frb-s", cfg.Scale*2, spec.Seed)
	if _, err := r.OpenArtifact("frb-s", bad); err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("mismatched fingerprint served: %v", err)
	}

	// The matching request streams a valid artifact that decodes to
	// the run's own graph.
	rc, err := r.OpenArtifact("frb-s", good)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	g, _, err := datasets.ReadSnapshot(rc, good)
	if err != nil {
		t.Fatalf("served artifact invalid: %v", err)
	}
	if g.NumVertices() != r.graph("frb-s").NumVertices() {
		t.Fatal("served artifact decodes to a different graph")
	}
}

// TestOpenArtifactCloseJoinsEncoder: the memory-streaming path runs
// its snapshot encoder in a goroutine; abandoning the stream mid-read
// must join that goroutine — Close only returns once the encoder has
// exited, so no writer can outlive the request and touch a graph the
// run is tearing down.
func TestOpenArtifactCloseJoinsEncoder(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"frb-s"}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := datasets.ByName("frb-s")
	fp := datasets.SnapshotFingerprint("frb-s", cfg.Scale, spec.Seed)
	rc, err := r.OpenArtifact("frb-s", fp)
	if err != nil {
		t.Fatal(err)
	}
	// Consume a sliver so the encoder is mid-stream, then abandon it.
	if _, err := io.ReadFull(rc, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- rc.Close() }()
	select {
	case <-done:
		// Close returned, so the encoder goroutine has exited.
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return; encoder goroutine was not joined")
	}
}

// TestWorkerFetchFallsBackToGeneration: a worker whose scheduler
// refuses artifact requests (serving disabled) must still complete its
// cells by generating locally — shipping is an optimization, never a
// dependency.
func TestWorkerFetchFallsBackToGeneration(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"frb-s"}
	cfg.BatchSize = 2
	cfg.FrozenClock = true
	cfg.Workers = 1

	local, _ := exportRun(t, cfg)

	workerProgress := &syncBuffer{}
	h := &WorkerHandler{
		DatasetCacheDir: t.TempDir(),
		FetchArtifacts:  true,
		Progress:        workerProgress,
	}
	cfg.Remote = []string{startWorker(t, h, 4)}
	cfg.ServeArtifacts = false // scheduler refuses every request
	distributed, dispatched := remoteCells(t, cfg)

	if dispatched == 0 {
		t.Fatal("no cells were dispatched to the remote worker")
	}
	wp := workerProgress.String()
	if !strings.Contains(wp, "generated") {
		t.Fatalf("worker did not fall back to generation:\n%s", wp)
	}
	if strings.Contains(wp, "fetched frb-s") {
		t.Fatalf("worker claims a fetch from a non-serving scheduler:\n%s", wp)
	}
	if !bytes.Equal(local, distributed) {
		t.Fatal("export diverges under the generation fallback")
	}
}

// TestFetchedArtifactFeedsExports: the fetched path must carry the
// GraphSON raw size through to load measurements exactly like the
// generated path (the "Raw Data" bar of Figure 1) — a worker that
// fetched its dataset reports the same RawJSON as one that generated
// it. Pinned at the datasets layer here; the e2e byte-compare above
// covers the full export.
func TestFetchedArtifactFeedsExports(t *testing.T) {
	spec := datasets.ByName("frb-s")
	g := spec.Generate(0.001)
	fp := datasets.SnapshotFingerprint("frb-s", 0.001, spec.Seed)
	raw := datasets.RawJSONSize(g)
	dir := t.TempDir()
	path := datasets.SnapshotPath(dir, "frb-s", fp)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := datasets.WriteSnapshot(f, g, raw, fp); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fetch := func(name string, want [32]byte) (io.ReadCloser, error) {
		return os.Open(filepath.Join(dir, filepath.Base(path)))
	}
	_, st, err := datasets.AcquireVia("frb-s", 0.001, t.TempDir(), fetch)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Fetched || st.RawJSON != raw {
		t.Fatalf("fetched acquire lost the raw size: %+v (want RawJSON %d)", st, raw)
	}
}
