package harness

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
)

// checkpointVersion guards the on-disk checkpoint format; bump it when
// cellRecord or Fingerprint change shape, or when planGrid changes the
// meaning of cell indexes. v2: the micro cell split into separately
// resumable interactive (micro-i) and batch (micro-b) halves — a v1
// checkpoint's indexes would misattribute every record.
const checkpointVersion = 2

// Fingerprint identifies the result-relevant part of a configuration:
// two runs with equal fingerprints plan the same grid and measure the
// same logical cells, so a checkpoint written by one can be replayed by
// the other. Worker counts are deliberately absent — they never change
// results, only wall-clock time.
type Fingerprint struct {
	Version   int      `json:"version"`
	Engines   []string `json:"engines"`
	Datasets  []string `json:"datasets"`
	Scale     float64  `json:"scale"`
	Seed      int64    `json:"seed"`
	BatchSize int      `json:"batch_size"`
	TimeoutNS int64    `json:"timeout_ns"`
	Isolation bool     `json:"isolation"`
	// Frozen is Config.FrozenClock: a zero-duration run must not replay
	// real-clock measurements or vice versa.
	Frozen bool `json:"frozen_clock"`
	Jobs   int  `json:"jobs"` // grid plan length, a final drift guard
}

// fingerprint derives the checkpoint compatibility key for this run.
func (r *Runner) fingerprint(jobs int) Fingerprint {
	return Fingerprint{
		Version:   checkpointVersion,
		Engines:   r.cfg.Engines,
		Datasets:  r.cfg.Datasets,
		Scale:     r.cfg.Scale,
		Seed:      r.cfg.Seed,
		BatchSize: r.cfg.BatchSize,
		TimeoutNS: int64(r.cfg.Timeout),
		Isolation: r.cfg.Isolation,
		Frozen:    r.cfg.FrozenClock,
		Jobs:      jobs,
	}
}

func (f Fingerprint) equal(o Fingerprint) bool {
	eq := func(a, b []string) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	return f.Version == o.Version && eq(f.Engines, o.Engines) &&
		eq(f.Datasets, o.Datasets) && f.Scale == o.Scale &&
		f.Seed == o.Seed && f.BatchSize == o.BatchSize &&
		f.TimeoutNS == o.TimeoutNS && f.Isolation == o.Isolation &&
		f.Frozen == o.Frozen && f.Jobs == o.Jobs
}

// errCheckpointEmpty marks a checkpoint file that exists but has no
// header line yet — recoverable for resume (start fresh), reportable
// for -status.
var errCheckpointEmpty = errors.New("harness: checkpoint file is empty")

// readCheckpoint parses a JSONL checkpoint file into its header
// fingerprint and completed cells, without judging compatibility —
// resume (loadCheckpoint) and the -status command (ReadStatus) share
// it. A torn trailing line — the footprint of the crash the checkpoint
// exists to survive — truncates recovery at the last complete record.
// A missing file surfaces as fs.ErrNotExist.
func readCheckpoint(path string) (Fingerprint, map[int]cellResult, error) {
	var got Fingerprint
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return got, nil, err
	}
	if err != nil {
		return got, nil, fmt.Errorf("harness: checkpoint: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return got, nil, errCheckpointEmpty
	}
	if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
		return got, nil, fmt.Errorf("harness: checkpoint %s: bad header: %w", path, err)
	}

	cells := make(map[int]cellResult)
	for sc.Scan() {
		var rec cellRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			break // torn or partial line: recover everything before it
		}
		if rec.Index < 0 || rec.Index >= got.Jobs {
			break
		}
		cells[rec.Index] = rec.cell()
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		return got, nil, fmt.Errorf("harness: checkpoint %s: %w", path, err)
	}
	return got, cells, nil
}

// loadCheckpoint recovers the completed cells of a previous run from a
// JSONL checkpoint file. A missing or still-empty file is not an error
// (the run simply starts fresh); an existing file whose fingerprint
// differs from want is (silently mixing measurements from two
// configurations would corrupt the result set).
func loadCheckpoint(path string, want Fingerprint) (map[int]cellResult, error) {
	got, cells, err := readCheckpoint(path)
	switch {
	case errors.Is(err, fs.ErrNotExist) || errors.Is(err, errCheckpointEmpty):
		return nil, nil
	case err != nil:
		return nil, err
	}
	if !got.equal(want) {
		return nil, fmt.Errorf("harness: checkpoint %s was written by an incompatible configuration (engines, datasets, scale, seed, batch, timeout, isolation or frozen-clock differ); remove it or rerun with the original flags", path)
	}
	return cells, nil
}
