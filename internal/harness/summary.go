package harness

import (
	"fmt"
	"io"
	"time"
)

// Table4Category groups micro queries as in the columns of Table 4.
type Table4Category struct {
	Name    string
	Queries []string
}

// Table4Categories returns the paper's Table 4 columns, mapped to the
// query numbers each one aggregates.
func Table4Categories() []Table4Category {
	return []Table4Category{
		{"Load", nil}, // special-cased: uses load measurements
		{"Insertions", []string{"Q2", "Q3", "Q4", "Q5", "Q6", "Q7"}},
		{"GraphStatistics", []string{"Q8", "Q9", "Q10"}},
		{"SearchPropLabel", []string{"Q11", "Q12", "Q13"}},
		{"SearchById", []string{"Q14", "Q15"}},
		{"Updates", []string{"Q16", "Q17"}},
		{"DeleteNode", []string{"Q18"}},
		{"OtherDeletions", []string{"Q19", "Q20", "Q21"}},
		{"Neighbors", []string{"Q22", "Q23", "Q24"}},
		{"NodeEdgeLabels", []string{"Q25", "Q26", "Q27"}},
		{"DegreeFilter", []string{"Q28", "Q29", "Q30", "Q31"}},
		{"BFS", []string{"Q32(d=2)", "Q32(d=3)", "Q32(d=4)", "Q32(d=5)", "Q33"}},
		{"ShortestPath", []string{"Q34", "Q35"}},
	}
}

// Verdict is a Table 4 cell.
type Verdict string

// Table 4 symbols: best or near-best, unremarkable, problematic.
const (
	VerdictGood  Verdict = "ok"
	VerdictMid   Verdict = ""
	VerdictWarn  Verdict = "warn"
	VerdictUnrun Verdict = "-"
)

// goodFactor and warnFactor classify an engine by its geometric-mean
// slowdown against the category's best engine.
const (
	goodFactor = 3.0
	warnFactor = 30.0
)

// Summary derives the Table 4 matrix from the measurements: an engine
// earns "ok" in a category when its geometric mean latency is within
// goodFactor of the best engine's, and "warn" when it exceeds
// warnFactor or produced any timeout/failure in that category.
func Summary(res *Results) map[string]map[string]Verdict {
	cats := Table4Categories()
	out := map[string]map[string]Verdict{}
	for _, e := range res.Config.Engines {
		out[e] = map[string]Verdict{}
	}

	// Load category from the load measurements. DNF loads don't enter
	// the geomean (their zero Elapsed would rank the broken engine
	// fastest); like query failures, they force "warn".
	loadTimes := map[string]time.Duration{}
	loadBad := map[string]bool{}
	var bestLoad time.Duration
	for _, e := range res.Config.Engines {
		var ds []time.Duration
		for _, l := range res.Loads {
			if l.Engine != e {
				continue
			}
			if l.Failed {
				loadBad[e] = true
				continue
			}
			ds = append(ds, l.Elapsed)
		}
		g := geomean(ds)
		loadTimes[e] = g
		if g > 0 && (bestLoad == 0 || g < bestLoad) {
			bestLoad = g
		}
	}
	for _, e := range res.Config.Engines {
		out[e]["Load"] = classifyFactor(loadTimes[e], bestLoad, loadBad[e])
	}

	// Query categories.
	type agg struct {
		times []time.Duration
		bad   bool
		seen  bool
	}
	for _, cat := range cats[1:] {
		inCat := map[string]bool{}
		for _, q := range cat.Queries {
			inCat[q] = true
		}
		perEngine := map[string]*agg{}
		for _, e := range res.Config.Engines {
			perEngine[e] = &agg{}
		}
		for _, m := range res.Micro {
			if m.Mode != ModeInteractive || !inCat[m.Query] {
				continue
			}
			a := perEngine[m.Engine]
			if a == nil {
				continue
			}
			a.seen = true
			if m.TimedOut || m.Failed {
				a.bad = true
				continue
			}
			a.times = append(a.times, m.Elapsed)
		}
		var best time.Duration
		for _, a := range perEngine {
			if g := geomean(a.times); g > 0 && (best == 0 || g < best) {
				best = g
			}
		}
		for _, e := range res.Config.Engines {
			a := perEngine[e]
			switch {
			case !a.seen:
				out[e][cat.Name] = VerdictUnrun
			case a.bad:
				out[e][cat.Name] = VerdictWarn
			default:
				out[e][cat.Name] = classifyFactor(geomean(a.times), best, false)
			}
		}
	}
	return out
}

func classifyFactor(g, best time.Duration, bad bool) Verdict {
	switch {
	case bad:
		return VerdictWarn
	case g == 0 || best == 0:
		return VerdictUnrun
	case float64(g) <= goodFactor*float64(best):
		return VerdictGood
	case float64(g) >= warnFactor*float64(best):
		return VerdictWarn
	default:
		return VerdictMid
	}
}

// ReportTable4 renders the summary matrix (Table 4): "ok" is the
// paper's check mark, "warn" its warning sign.
func ReportTable4(res *Results, w io.Writer) {
	sum := Summary(res)
	cats := Table4Categories()
	fmt.Fprintln(w, "Table 4: evaluation summary (ok = best or near-best; warn = low end or execution problems)")
	fmt.Fprintf(w, "%-12s", "engine")
	for _, c := range cats {
		fmt.Fprintf(w, " %-15s", c.Name)
	}
	fmt.Fprintln(w)
	for _, e := range res.Config.Engines {
		fmt.Fprintf(w, "%-12s", e)
		for _, c := range cats {
			fmt.Fprintf(w, " %-15s", string(sum[e][c.Name]))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// ReportAll renders every table and figure in paper order.
func ReportAll(res *Results, w io.Writer) {
	ReportTable1(w)
	ReportTable2(w)
	ReportTable3(res, w)
	ReportFig1Space(res, w)
	ReportFig1cTimeouts(res, w)
	if len(res.Complex) > 0 {
		ReportFig2Complex(res, w)
	}
	ReportFig3Load(res, w)
	ReportFig3Insert(res, w)
	ReportFig3UpdateDelete(res, w)
	ReportFig4Select(res, w)
	ReportFig4ByID(res, w)
	ReportFig4cIndex(res, w)
	ReportFig5Local(res, w)
	ReportFig5Degree(res, w)
	ReportFig6BFS(res, w)
	ReportFig7SP(res, w)
	ReportFig7Overall(res, w)
	ReportTable4(res, w)
	ReportShapes(res, w)
}

// Report renders one named report; see ReportNames.
func Report(res *Results, name string, w io.Writer) error {
	fns := map[string]func(){
		"table1": func() { ReportTable1(w) },
		"table2": func() { ReportTable2(w) },
		"table3": func() { ReportTable3(res, w) },
		"fig1":   func() { ReportFig1Space(res, w) },
		"fig1c":  func() { ReportFig1cTimeouts(res, w) },
		"fig2":   func() { ReportFig2Complex(res, w) },
		"fig3a":  func() { ReportFig3Load(res, w) },
		"fig3b":  func() { ReportFig3Insert(res, w) },
		"fig3c":  func() { ReportFig3UpdateDelete(res, w) },
		"fig4a":  func() { ReportFig4Select(res, w) },
		"fig4b":  func() { ReportFig4ByID(res, w) },
		"fig4c":  func() { ReportFig4cIndex(res, w) },
		"fig5a":  func() { ReportFig5Local(res, w) },
		"fig5b":  func() { ReportFig5Degree(res, w) },
		"fig6":   func() { ReportFig6BFS(res, w) },
		"fig7":   func() { ReportFig7SP(res, w) },
		"fig7cd": func() { ReportFig7Overall(res, w) },
		"table4": func() { ReportTable4(res, w) },
		"shapes": func() { ReportShapes(res, w) },
		"all":    func() { ReportAll(res, w) },
	}
	fn, ok := fns[name]
	if !ok {
		return fmt.Errorf("harness: unknown report %q (known: %v)", name, ReportNames())
	}
	fn()
	return nil
}

// ValidReport reports whether name names a known report. Callers that
// run a grid before rendering (cmd/gdb-bench) validate up front, so an
// unknown report name is not discovered only after hours of execution.
func ValidReport(name string) bool {
	for _, n := range ReportNames() {
		if n == name {
			return true
		}
	}
	return false
}

// ReportNames lists the available reports.
func ReportNames() []string {
	return []string{
		"table1", "table2", "table3", "fig1", "fig1c", "fig2",
		"fig3a", "fig3b", "fig3c", "fig4a", "fig4b", "fig4c",
		"fig5a", "fig5b", "fig6", "fig7", "fig7cd", "table4",
		"shapes", "all",
	}
}
