package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// ExportJSON writes the full result set as JSON, for archival or
// external plotting of the figures. Every field round-trips exactly
// (durations are nanosecond integers, space breakdowns re-encode with
// sorted keys), which is what lets checkpoint/resume promise a
// byte-identical export after an interruption.
func ExportJSON(res *Results, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Scale     float64           `json:"scale"`
		TimeoutMS int64             `json:"timeout_ms"`
		BatchSize int               `json:"batch_size"`
		Loads     []LoadMeasurement `json:"loads"`
		Micro     []Measurement     `json:"micro"`
		Indexed   []Measurement     `json:"indexed"`
		Complex   []Measurement     `json:"complex"`
	}{
		Scale:     res.Config.Scale,
		TimeoutMS: res.Config.Timeout.Milliseconds(),
		BatchSize: res.Config.BatchSize,
		Loads:     res.Loads,
		Micro:     res.Micro,
		Indexed:   res.Indexed,
		Complex:   res.Complex,
	})
}

// ExportCSV writes one row per measurement (loads included, with query
// "Q1"), the flat format the paper's plotting scripts consume.
func ExportCSV(res *Results, w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"engine", "dataset", "query", "mode", "micros", "timeout", "failed", "count"}); err != nil {
		return err
	}
	for _, l := range res.Loads {
		rec := []string{l.Engine, l.Dataset, "Q1", string(ModeInteractive),
			strconv.FormatInt(l.Elapsed.Microseconds(), 10), "false",
			strconv.FormatBool(l.Failed),
			strconv.FormatInt(l.Space.Total, 10)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	all := make([]Measurement, 0, len(res.Micro)+len(res.Indexed)+len(res.Complex))
	all = append(all, res.Micro...)
	all = append(all, res.Indexed...)
	all = append(all, res.Complex...)
	for _, m := range all {
		rec := []string{m.Engine, m.Dataset, m.Query, string(m.Mode),
			strconv.FormatInt(m.Elapsed.Microseconds(), 10),
			strconv.FormatBool(m.TimedOut), strconv.FormatBool(m.Failed),
			strconv.FormatInt(m.Count, 10)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ImportJSON reads a result set previously written by ExportJSON. The
// embedded config fields are restored; report rendering needs Engines
// and Datasets, which are reconstructed from the measurements.
func ImportJSON(r io.Reader) (*Results, error) {
	var raw struct {
		Scale     float64           `json:"scale"`
		TimeoutMS int64             `json:"timeout_ms"`
		BatchSize int               `json:"batch_size"`
		Loads     []LoadMeasurement `json:"loads"`
		Micro     []Measurement     `json:"micro"`
		Indexed   []Measurement     `json:"indexed"`
		Complex   []Measurement     `json:"complex"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("harness: import: %w", err)
	}
	res := &Results{
		Loads:   raw.Loads,
		Micro:   raw.Micro,
		Indexed: raw.Indexed,
		Complex: raw.Complex,
	}
	res.Config.Scale = raw.Scale
	res.Config.BatchSize = raw.BatchSize
	res.Config.Timeout = time.Duration(raw.TimeoutMS) * time.Millisecond
	seenE := map[string]bool{}
	seenD := map[string]bool{}
	record := func(e, d string) {
		if !seenE[e] {
			seenE[e] = true
			res.Config.Engines = append(res.Config.Engines, e)
		}
		if !seenD[d] {
			seenD[d] = true
			res.Config.Datasets = append(res.Config.Datasets, d)
		}
	}
	for _, l := range raw.Loads {
		record(l.Engine, l.Dataset)
	}
	for _, m := range raw.Micro {
		record(m.Engine, m.Dataset)
	}
	return res, nil
}
