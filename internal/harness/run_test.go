package harness

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/engines/sqlg"
	"repro/internal/workload"
)

func TestDepthSuffix(t *testing.T) {
	cases := map[int]string{2: "(d=2)", 5: "(d=5)", 10: "(d=10)", 15: "(d=15)"}
	for d, want := range cases {
		if got := depthSuffix(d); got != want {
			t.Errorf("depthSuffix(%d) = %q, want %q", d, got, want)
		}
	}
}

func TestRunPoolExecutesEveryJobOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16, 64} {
		const n = 37
		var counts [n]atomic.Int64
		runPool(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: job %d executed %d times", workers, i, c)
			}
		}
	}
}

// TestBatchRetainsLastSuccessfulCount guards the fix for the batch
// counter: a failing iteration must not overwrite Count with its zero
// value — the batch reports the count of the last successful iteration.
func TestBatchRetainsLastSuccessfulCount(t *testing.T) {
	cfg := tinyConfig()
	cfg.BatchSize = 5
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := r.graph("frb-s")
	pg := NewParamGen(g, cfg.Seed)
	res := identityLoadResult(g)
	var calls int
	q := &workload.Query{
		Num: 34, Name: "QFAIL",
		Run: func(ctx context.Context, e core.Engine, p workload.Params) (workload.Result, error) {
			calls++
			if calls == 3 {
				return workload.Result{}, errors.New("synthetic mid-batch failure")
			}
			return workload.Result{Count: 7}, nil
		},
	}
	m := r.batch(nil, q, pg, res)
	if !m.Failed {
		t.Fatal("mid-batch failure not marked on the batch measurement")
	}
	if calls != 3 {
		t.Fatalf("batch ran %d iterations, want stop at 3", calls)
	}
	if m.Count != 7 {
		t.Fatalf("batch Count = %d, want 7 (last successful iteration)", m.Count)
	}
}

// TestBatchEnforcesTimeBudget guards the batch deadline: every
// iteration shares one context carrying the Timeout×BatchSize budget,
// so an iteration that stalls past it is cut off and classified as a
// timeout rather than hanging the cell.
func TestBatchEnforcesTimeBudget(t *testing.T) {
	cfg := tinyConfig()
	cfg.BatchSize = 2
	cfg.Timeout = 20 * time.Millisecond
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := r.graph("frb-s")
	pg := NewParamGen(g, cfg.Seed)
	res := identityLoadResult(g)
	q := &workload.Query{
		Num: 34, Name: "QSLOW",
		Run: func(ctx context.Context, e core.Engine, p workload.Params) (workload.Result, error) {
			<-ctx.Done()
			return workload.Result{}, ctx.Err()
		},
	}
	m := r.batch(nil, q, pg, res)
	if !m.TimedOut {
		t.Fatalf("stalled batch not classified as timeout: %+v", m)
	}
}

// frozenClock makes every recorded duration zero, so two runs of the
// same configuration export byte-identical JSON.
func frozenClock(r *Runner) {
	r.now = func() time.Time { return time.Time{} }
	r.since = func(time.Time) time.Duration { return 0 }
}

// TestParallelMatchesSequentialExport is the determinism contract of
// the worker pool: a parallel run exports byte-identical JSON to a
// sequential one on the same seed and config. Run under -race it also
// proves the shared graph cache and result assembly are race-free.
func TestParallelMatchesSequentialExport(t *testing.T) {
	run := func(workers int) []byte {
		cfg := tinyConfig()
		cfg.BatchSize = 2
		cfg.Workers = workers
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		frozenClock(r)
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ExportJSON(res, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := run(1)
	par := run(8)
	if !bytes.Equal(seq, par) {
		seqLines := strings.Split(string(seq), "\n")
		parLines := strings.Split(string(par), "\n")
		for i := range seqLines {
			if i >= len(parLines) || seqLines[i] != parLines[i] {
				t.Fatalf("export diverges at line %d:\nworkers=1: %s\nworkers=8: %s",
					i+1, seqLines[i], parLines[min(i, len(parLines)-1)])
			}
		}
		t.Fatalf("exports differ in length: %d vs %d bytes", len(seq), len(par))
	}
}

// failLoadEngine wraps a real engine but refuses to bulk-load —
// the canned fixture for DNF recording.
type failLoadEngine struct {
	core.Engine
}

func (f *failLoadEngine) BulkLoad(g *core.Graph) (*core.LoadResult, error) {
	return nil, errors.New("synthetic load failure")
}

// TestLoadFailureRecordsDNF: an engine whose load fails must be
// recorded as DNF — failed LoadMeasurement plus failed cells — while
// every other engine's results are still collected, as in the paper.
// Config.ErrorsFatal restores the abort-on-error behaviour.
func TestLoadFailureRecordsDNF(t *testing.T) {
	unregister := engines.Register("fail-load", func() core.Engine {
		return &failLoadEngine{sqlg.New()}
	})
	defer unregister()

	cfg := tinyConfig()
	cfg.Engines = []string{"fail-load", "sqlg"}
	cfg.Datasets = []string{"frb-s"}
	cfg.BatchSize = 2
	cfg.Workers = 4
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatalf("load failure aborted the run: %v", err)
	}

	// Loads: one per engine, in config order, with the failure recorded.
	if len(res.Loads) != 2 {
		t.Fatalf("loads = %d, want 2", len(res.Loads))
	}
	if l := res.Loads[0]; l.Engine != "fail-load" || !l.Failed || l.Error == "" {
		t.Fatalf("failing engine's load not recorded as DNF: %+v", l)
	}
	if l := res.Loads[1]; l.Engine != "sqlg" || l.Failed {
		t.Fatalf("healthy engine's load disturbed: %+v", l)
	}

	// Every planned cell of the failing engine is a DNF measurement; the
	// healthy engine has the same number of cells, none of them DNF.
	perEngine := map[string]int{}
	for _, m := range res.Micro {
		perEngine[m.Engine]++
		switch m.Engine {
		case "fail-load":
			if !m.Failed || !strings.HasPrefix(m.Error, "DNF") {
				t.Fatalf("fail-load cell %s %s not DNF: %+v", m.Query, m.Mode, m)
			}
		case "sqlg":
			if strings.HasPrefix(m.Error, "DNF") {
				t.Fatalf("healthy engine cell %s %s marked DNF", m.Query, m.Mode)
			}
		}
	}
	if perEngine["fail-load"] != perEngine["sqlg"] || perEngine["fail-load"] == 0 {
		t.Fatalf("cell counts diverge: %v", perEngine)
	}

	// The indexed experiment records DNF cells too.
	var idxDNF int
	for _, m := range res.Indexed {
		if m.Engine == "fail-load" {
			if !m.Failed || !strings.HasPrefix(m.Error, "DNF") {
				t.Fatalf("indexed cell %s not DNF: %+v", m.Query, m)
			}
			idxDNF++
		}
	}
	if idxDNF != 2 {
		t.Fatalf("indexed DNF cells = %d, want 2 (Q11(idx), Q5(idx))", idxDNF)
	}

	// DNF-aware consumers: the broken engine must not rank best in
	// Table 4's Load column, and the CSV export flags its Q1 row.
	if v := Summary(res)["fail-load"]["Load"]; v != VerdictWarn {
		t.Fatalf("Table 4 Load verdict for failing engine = %q, want warn", v)
	}
	var csvBuf bytes.Buffer
	if err := ExportCSV(res, &csvBuf); err != nil {
		t.Fatal(err)
	}
	var q1Row string
	for _, line := range strings.Split(csvBuf.String(), "\n") {
		if strings.HasPrefix(line, "fail-load,frb-s,Q1,") {
			q1Row = line
		}
	}
	if !strings.Contains(q1Row, ",true,") {
		t.Fatalf("CSV Q1 row for failing engine not flagged failed: %q", q1Row)
	}

	// ErrorsFatal restores the old abort semantics.
	cfg.ErrorsFatal = true
	r2, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Run(); err == nil {
		t.Fatal("ErrorsFatal run did not surface the load error")
	}
}
