package harness

import (
	"sync"
	"sync/atomic"
)

// runPool executes jobs 0..n-1 on at most workers goroutines. Each job
// index is executed exactly once; callers keep results deterministic by
// having job(i) write only into slot i of a pre-sized slice, so the
// assembled output is independent of completion order. workers <= 1
// degenerates to a plain sequential loop on the calling goroutine.
func runPool(workers, n int, job func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}
