package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestReportsRenderFromRealRun(t *testing.T) {
	res := runTiny(t)
	for _, name := range ReportNames() {
		var buf bytes.Buffer
		if err := Report(res, name, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s rendered nothing", name)
		}
	}
	if err := Report(res, "nope", &bytes.Buffer{}); err == nil {
		t.Fatal("unknown report accepted")
	}
}

func TestReportContents(t *testing.T) {
	res := runTiny(t)
	var buf bytes.Buffer
	ReportFig3Load(res, &buf)
	s := buf.String()
	for _, want := range []string{"neo-1.9", "sqlg", "frb-s", "ldbc"} {
		if !strings.Contains(s, want) {
			t.Errorf("fig3a missing %q:\n%s", want, s)
		}
	}
	buf.Reset()
	ReportTable3(res, &buf)
	if !strings.Contains(buf.String(), "paper") {
		t.Error("table3 lacks paper comparison rows")
	}
	buf.Reset()
	ReportFig6BFS(res, &buf)
	if !strings.Contains(buf.String(), "Q32(d=5)") {
		t.Error("fig6 lacks the depth sweep")
	}
	buf.Reset()
	ReportFig2Complex(res, &buf)
	if !strings.Contains(buf.String(), "friend-of-friend") {
		t.Error("fig2 lacks complex query columns")
	}
}

func TestSummaryShape(t *testing.T) {
	res := runTiny(t)
	sum := Summary(res)
	cats := Table4Categories()
	for _, e := range res.Config.Engines {
		row, ok := sum[e]
		if !ok {
			t.Fatalf("summary lacks engine %s", e)
		}
		for _, c := range cats {
			if _, ok := row[c.Name]; !ok {
				t.Fatalf("summary %s lacks category %s", e, c.Name)
			}
		}
	}
	// At least one "ok" must exist per category among engines (someone
	// is best).
	for _, c := range cats {
		good := false
		for _, e := range res.Config.Engines {
			if sum[e][c.Name] == VerdictGood {
				good = true
			}
		}
		if !good {
			t.Errorf("category %s has no best engine", c.Name)
		}
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Microsecond:  "500µs",
		2500 * time.Microsecond: "2.5ms",
		1500 * time.Millisecond: "1.50s",
		90 * time.Second:        "1.5m",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
}
