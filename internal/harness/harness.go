// Package harness materializes the paper's evaluation methodology
// (Section 5): it loads each dataset into each engine through the
// engine's bulk path, draws query parameters once against the dataset
// (so every engine is asked about the same logical objects), executes
// every micro query in interactive and batch mode under a timeout,
// runs the complex workload on ldbc, and renders each of the paper's
// tables and figures from the collected measurements.
package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/engines"
	"repro/internal/gremlin"
	"repro/internal/workload"
)

// Config parameterizes an evaluation run.
type Config struct {
	// Engines to evaluate; defaults to all registered configurations.
	Engines []string
	// Datasets to use; defaults to the Freebase ladder plus ldbc, the
	// datasets Section 6 focuses on.
	Datasets []string
	// Scale is the dataset scale factor (1.0 = paper sizes).
	Scale float64
	// Timeout per query execution — the paper's 2-hour limit, scaled to
	// the run.
	Timeout time.Duration
	// BatchSize is the number of executions in batch mode (paper: 10).
	BatchSize int
	// Seed fixes all random choices.
	Seed int64
	// Isolation reloads a fresh engine before every mutating query
	// (read queries always share the loaded instance, which they do not
	// modify).
	Isolation bool
	// Workers bounds the number of grid cells — (engine, dataset) micro
	// cells plus indexed and complex cells — evaluated concurrently.
	// Zero or negative means runtime.NumCPU(). Results are assembled in
	// the same order regardless of the worker count.
	Workers int
	// CellWorkers bounds the number of batch iterations executed
	// concurrently inside one cell. Only non-mutating queries fan out
	// (engines are single-writer; their read surfaces are required to be
	// race-free, see core.Engine), engines with result-affecting read
	// state veto fan-out via core.ConcurrentReader, and the iterations
	// fold in index order — so results are identical for any value.
	// Zero, one or negative means sequential.
	CellWorkers int
	// Remote lists gdb-worker addresses (host:port) whose slots join
	// the local workers in executing grid cells. The handshake ships
	// this run's fingerprint and requires both builds to have identical
	// engine/dataset catalogs; a worker that dies mid-cell has its cell
	// reassigned to the local queue. Like Workers, Remote is absent
	// from the checkpoint fingerprint: where a cell runs never changes
	// what it measures.
	Remote []string
	// CheckpointPath, when non-empty, streams every completed grid cell
	// to this JSONL file as workers finish: header line with the config
	// Fingerprint, then one record per cell, fsynced. A crash loses at
	// most the cell in flight.
	CheckpointPath string
	// Resume replays a compatible checkpoint from CheckpointPath before
	// executing: already-completed cells are restored and only the
	// missing ones run. The final Results are byte-identical to an
	// uninterrupted run. A checkpoint written under a different
	// Fingerprint is rejected; a missing file starts a fresh run.
	Resume bool
	// DatasetCacheDir, when non-empty, reuses binary dataset snapshots
	// from this directory instead of regenerating each graph, and
	// populates it on misses (see internal/datasets, Acquire). Cached
	// graphs are byte-identical to generated ones, so the cache is —
	// like the worker counts — deliberately absent from the checkpoint
	// fingerprint: where a graph came from never changes what a run
	// measures.
	DatasetCacheDir string
	// Mmap memory-maps warm snapshot artifacts instead of reading and
	// decoding them onto the heap: the CSR's columnar arrays alias the
	// mapped file (see internal/mmapfile), so a warm open touches only
	// the pages it needs. Graphs served either way are byte-identical —
	// like DatasetCacheDir, Mmap is deliberately absent from the
	// checkpoint fingerprint. No-op without a cache hit, and on
	// platforms without mmap it degrades to the heap path.
	Mmap bool
	// LSMDir, when non-empty, opens every durable-capable engine (the
	// titan configurations) over a write-ahead-logged store rooted in a
	// unique subdirectory of this path, one per cell. Engines without a
	// durable substrate still run volatile. Like DatasetCacheDir this is
	// absent from the checkpoint fingerprint: durability changes where
	// bytes live, not what a run measures — results stay comparable
	// with volatile runs modulo the WAL's write-path cost, which is the
	// point of measuring with it.
	LSMDir string
	// ServeArtifacts streams dataset snapshot artifacts to remote
	// workers that request them over the wire, so a cold worker fleet
	// seeds itself from this scheduler instead of regenerating every
	// dataset (gdb-bench enables it by default; see -serve-artifacts).
	// Serving is read-only and — like DatasetCacheDir — never changes
	// results: a shipped artifact is re-verified on arrival and decodes
	// to the exact graph the worker would have generated.
	ServeArtifacts bool
	// CrashAfterCells, when positive, exits the process (code 1) after
	// that many cells have been streamed to the checkpoint — fault
	// injection for exercising checkpoint/resume, used by the CI smoke
	// job. Replayed cells do not count.
	CrashAfterCells int
	// FrozenClock records every duration as zero, making exports fully
	// deterministic — the knob behind byte-identical CI comparisons.
	FrozenClock bool
	// NoOptimize disables the gremlin traversal optimizer (filter
	// reordering and implicit index fusion) for every query in the run —
	// the -optimize=false escape hatch for A/B comparisons. Optimized
	// and unoptimized plans are guaranteed element-identical, so the
	// flag — like Workers — never changes results and is absent from
	// the checkpoint fingerprint.
	NoOptimize bool
	// ErrorsFatal aborts the run on the first engine construction or
	// load error instead of recording the cell as DNF and continuing.
	ErrorsFatal bool
	// Progress, when non-nil, receives one line per completed step.
	Progress io.Writer
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Engines:   engines.Names(),
		Datasets:  []string{"frb-s", "frb-o", "frb-m", "frb-l"},
		Scale:     0.002,
		Timeout:   2 * time.Second,
		BatchSize: 10,
		Seed:      1,
		Isolation: true,
		Workers:   runtime.NumCPU(),
	}
}

// Mode distinguishes the two execution modes of Figure 1(c).
type Mode string

// Execution modes.
const (
	ModeInteractive Mode = "interactive"
	ModeBatch       Mode = "batch"
)

// Measurement is one (engine, dataset, query, mode) cell.
type Measurement struct {
	Engine   string
	Dataset  string
	Query    string // "Q2".."Q35", complex names, or "Q32(d=3)" style
	Mode     Mode
	Elapsed  time.Duration
	TimedOut bool
	Failed   bool   // non-timeout error (e.g. out of memory)
	Error    string // error text when Failed or TimedOut
	Count    int64  // result count (validation across engines)
}

// LoadMeasurement is one (engine, dataset) load (Q1) with its space
// occupancy (Figures 1 and 3(a)). A load that did not finish — engine
// construction or bulk-load error — is recorded with Failed set, the
// paper's DNF, and leaves every dependent cell DNF too.
type LoadMeasurement struct {
	Engine  string
	Dataset string
	Elapsed time.Duration
	Space   core.SpaceReport
	RawJSON int64 // size of the GraphSON representation ("Raw Data")
	Failed  bool
	Error   string
}

// Results accumulates a full evaluation.
type Results struct {
	Config  Config
	Loads   []LoadMeasurement
	Micro   []Measurement
	Indexed []Measurement // Q11 with an attribute index (Figure 4(c))
	Complex []Measurement // Figure 2 workload on ldbc
	Stats   map[string]datasets.Table3Row
}

// Runner executes the evaluation.
type Runner struct {
	cfg Config

	mu     sync.Mutex // guards graphs, fetch and Progress writes
	graphs map[string]*datasetCache
	// fetch, when non-nil, is consulted by dataset acquisition after a
	// local cache miss and before falling back to generation — the
	// worker side of artifact shipping (see SetDatasetFetcher).
	fetch datasets.FetchFunc

	// now and since default to the real clock; Config.FrozenClock and
	// tests substitute a frozen clock so two runs produce byte-identical
	// exports.
	now   func() time.Time
	since func(time.Time) time.Duration

	// exit is called to simulate a crash for Config.CrashAfterCells;
	// tests substitute it, production keeps os.Exit.
	exit func(code int)

	// lsmSeq numbers durable store directories under Config.LSMDir so
	// concurrent cells never share a WAL.
	lsmSeq atomic.Int64
}

// datasetCache generates a dataset graph (and its GraphSON raw size,
// the "Raw Data" bar of Figure 1) exactly once; after Do the fields are
// read-only and safe to share across worker goroutines.
type datasetCache struct {
	once    sync.Once
	g       *core.Graph
	rawJSON int64
}

// NewRunner validates the config and prepares a runner.
func NewRunner(cfg Config) (*Runner, error) {
	if len(cfg.Engines) == 0 {
		cfg.Engines = engines.Names()
	}
	if len(cfg.Datasets) == 0 {
		cfg.Datasets = DefaultConfig().Datasets
	}
	if cfg.Scale <= 0 {
		cfg.Scale = DefaultConfig().Scale
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultConfig().Timeout
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 10
	}
	for _, e := range cfg.Engines {
		if engines.Constructor(e) == nil {
			return nil, fmt.Errorf("harness: unknown engine %q", e)
		}
	}
	for _, d := range cfg.Datasets {
		if datasets.ByName(d) == nil {
			return nil, fmt.Errorf("harness: unknown dataset %q", d)
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.CellWorkers <= 0 {
		cfg.CellWorkers = 1
	}
	if cfg.Resume && cfg.CheckpointPath == "" {
		return nil, fmt.Errorf("harness: Resume requires CheckpointPath")
	}
	if cfg.CrashAfterCells > 0 && cfg.CheckpointPath == "" {
		return nil, fmt.Errorf("harness: CrashAfterCells requires CheckpointPath")
	}
	r := &Runner{
		cfg:    cfg,
		graphs: make(map[string]*datasetCache),
		now:    time.Now,   //lint:gdb-allow wallclock this IS the injectable clock's production default
		since:  time.Since, //lint:gdb-allow wallclock this IS the injectable clock's production default
		exit:   os.Exit,
	}
	if cfg.FrozenClock {
		r.now = func() time.Time { return time.Time{} }
		r.since = func(time.Time) time.Duration { return 0 }
	}
	return r, nil
}

// Config returns the effective configuration.
func (r *Runner) Config() Config { return r.cfg }

func (r *Runner) progressf(format string, args ...any) {
	if r.cfg.Progress != nil {
		r.mu.Lock()
		fmt.Fprintf(r.cfg.Progress, format+"\n", args...)
		r.mu.Unlock()
	}
}

// SetDatasetFetcher installs a remote artifact source for dataset
// acquisition: on a local cache miss the fetcher is tried before
// falling back to generation (the worker half of artifact shipping —
// remote workers point it at their scheduler's artifact stream). A
// fetched graph is byte-identical to a generated one, so the fetcher —
// like the cache dir — never changes what a run measures. Safe to call
// while cells execute; datasets already acquired keep their graphs.
func (r *Runner) SetDatasetFetcher(f datasets.FetchFunc) {
	r.mu.Lock()
	r.fetch = f
	r.mu.Unlock()
}

func (r *Runner) datasetFetcher() datasets.FetchFunc {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fetch
}

// dataset returns the cache entry for a dataset, acquiring the graph
// and its GraphSON raw size on first use. Acquisition tries, in order:
// the artifact cache when Config.DatasetCacheDir is set (a warm hit
// decodes the content-addressed snapshot), the remote fetcher when one
// was installed via SetDatasetFetcher (a cold worker pulls the
// artifact from its scheduler), and generation; the graph is identical
// whichever layer served it. Concurrent callers block on the entry's
// Once, so each graph is acquired exactly once per run and shared
// read-only afterwards.
func (r *Runner) dataset(name string) *datasetCache {
	r.mu.Lock()
	c, ok := r.graphs[name]
	if !ok {
		c = &datasetCache{}
		r.graphs[name] = c
	}
	r.mu.Unlock()
	c.once.Do(func() {
		g, st, err := datasets.AcquireWith(name, r.cfg.Scale, datasets.AcquireOptions{
			CacheDir: r.cfg.DatasetCacheDir,
			Fetch:    r.datasetFetcher(),
			Mmap:     r.cfg.Mmap,
		})
		if err != nil {
			// NewRunner validated every dataset name up front.
			panic(err)
		}
		if st.Err != nil {
			r.progressf("dataset %s: %v", name, st.Err)
		}
		switch {
		case st.Hit:
			r.progressf("dataset %s: warm cache hit (%d vertices, %d edges)", name, g.NumVertices(), g.NumEdges())
		case st.Fetched:
			r.progressf("fetched %s from scheduler (%d vertices, %d edges)", name, g.NumVertices(), g.NumEdges())
		default:
			suffix := ""
			if st.Stored {
				suffix = " (snapshot cached)"
			}
			r.progressf("dataset %s: generated %d vertices, %d edges%s", name, g.NumVertices(), g.NumEdges(), suffix)
		}
		c.g = g
		// A warm artifact carries the GraphSON size; otherwise stream-
		// count it here (the cold cached path computed it while storing).
		if st.RawJSON >= 0 {
			c.rawJSON = st.RawJSON
		} else {
			c.rawJSON = rawJSONSize(g)
		}
	})
	return c
}

// graph returns the (cached) dataset graph.
func (r *Runner) graph(name string) *core.Graph { return r.dataset(name).g }

// loadInto bulk-loads a dataset into a fresh engine, measuring time.
// With Config.LSMDir set, durable-capable engines open over a WAL in
// a cell-unique subdirectory instead of purely in memory.
func (r *Runner) loadInto(engine, dataset string) (core.Engine, *core.LoadResult, time.Duration, error) {
	var e core.Engine
	var err error
	if r.cfg.LSMDir != "" && engines.SupportsDurable(engine) {
		dir := filepath.Join(r.cfg.LSMDir,
			fmt.Sprintf("%s-%s-%d", engine, dataset, r.lsmSeq.Add(1)))
		e, _, err = engines.OpenDurable(engine, dir)
	} else {
		e, err = engines.New(engine)
	}
	if err != nil {
		return nil, nil, 0, err
	}
	g := r.graph(dataset)
	start := r.now()
	res, err := e.BulkLoad(g)
	elapsed := r.since(start)
	if err != nil {
		e.Close()
		return nil, nil, 0, fmt.Errorf("%s on %s: load: %w", engine, dataset, err)
	}
	return e, res, elapsed, nil
}

// queryContext derives the context every query execution runs under:
// the given time budget, plus the optimizer escape hatch when the run
// was configured with NoOptimize.
func (r *Runner) queryContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	if r.cfg.NoOptimize {
		ctx = gremlin.WithoutOptimizer(ctx)
	}
	return ctx, cancel
}

// timeQuery runs one query execution under the configured timeout.
func (r *Runner) timeQuery(e core.Engine, q *workload.Query, p workload.Params) Measurement {
	ctx, cancel := r.queryContext(r.cfg.Timeout)
	defer cancel()
	start := r.now()
	res, err := q.Run(ctx, e, p)
	m := Measurement{Query: q.Name, Elapsed: r.since(start), Count: res.Count}
	classify(&m, err)
	return m
}

func classify(m *Measurement, err error) {
	switch {
	case err == nil:
	case errors.Is(err, core.ErrTimeout) || errors.Is(err, context.DeadlineExceeded):
		m.TimedOut = true
		m.Error = err.Error()
	default:
		m.Failed = true
		m.Error = err.Error()
	}
}
