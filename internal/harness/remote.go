package harness

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datasets"
	"repro/internal/engines"
	"repro/internal/remote"
)

// CatalogFingerprint identifies the measurement-relevant build of this
// binary: the registered engine catalog, the dataset catalog, the
// checkpoint record version and the wire protocol version. A scheduler
// and a worker with different fingerprints — an extra engine, a
// renamed dataset, a record-format bump — would plan different grids
// or emit incomparable records, so the remote handshake requires the
// fingerprints to be identical.
func CatalogFingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "proto=%d;checkpoint=%d;", remote.ProtocolVersion, checkpointVersion)
	fmt.Fprintf(h, "engines=%q;", engines.Names())
	fmt.Fprintf(h, "datasets=%q;", datasets.Names())
	return fmt.Sprintf("%x", h.Sum(nil))
}

// configFromFingerprint reconstructs a runnable configuration from the
// wire fingerprint. The Fingerprint carries exactly the
// result-relevant knobs, which is the point: a remote worker given
// only the fingerprint plans the same grid and measures the same
// logical cells as the scheduler. Concurrency knobs (Workers,
// CellWorkers) stay the worker's own business.
func configFromFingerprint(fp Fingerprint) Config {
	return Config{
		Engines:     fp.Engines,
		Datasets:    fp.Datasets,
		Scale:       fp.Scale,
		Timeout:     time.Duration(fp.TimeoutNS),
		BatchSize:   fp.BatchSize,
		Seed:        fp.Seed,
		Isolation:   fp.Isolation,
		FrozenClock: fp.Frozen,
	}
}

// WorkerHandler is the cmd/gdb-worker side of the remote transport:
// it vets scheduler handshakes against this build's catalog
// fingerprint and executes grid cells through a per-configuration
// Runner, so dataset graphs are generated once and shared across the
// cells of a run (and across schedulers retrying the same run). Only
// the most recent configuration's Runner is cached — a Runner pins
// its generated dataset graphs, and a long-lived worker serving many
// different runs must not accumulate one graph set per run; sessions
// already accepted keep their own Runner reference, so replacing the
// cache never disturbs a run in progress.
type WorkerHandler struct {
	// CellWorkers is applied to every accepted run's configuration
	// (it never changes results, only this worker's wall-clock time).
	CellWorkers int
	// DatasetCacheDir is applied to every accepted run's configuration:
	// a fleet of workers pointed at warm caches skips the V+E dataset
	// generation entirely, per process. Like CellWorkers it never
	// changes results — cached graphs are byte-identical to generated
	// ones — so it stays the worker's own business.
	DatasetCacheDir string
	// Mmap memory-maps warm artifacts in DatasetCacheDir instead of
	// decoding them onto this worker's heap (Config.Mmap). Like the
	// cache directory itself, it is the worker's own business: mapped
	// and heap-decoded graphs are byte-identical.
	Mmap bool
	// FetchArtifacts lets accepted runs pull missing dataset artifacts
	// from their scheduler over the session connection before falling
	// back to local generation — the cold-fleet seeding path (gdb-worker
	// enables it by default; see -artifact-fetch). Fetched artifacts
	// are re-verified by fingerprint and CRC on arrival and land in
	// DatasetCacheDir via the same atomic write path generated ones
	// use, so — like the cache itself — fetching never changes results.
	FetchArtifacts bool
	// NoOptimize disables the gremlin traversal optimizer for every
	// accepted run (the worker-side -optimize=false escape hatch).
	// Optimized and unoptimized plans are element-identical, so — like
	// CellWorkers — the knob changes this worker's wall-clock time,
	// never the results it reports.
	NoOptimize bool
	// Progress, when non-nil, receives the per-cell progress lines of
	// accepted runs.
	Progress io.Writer
	// Catalog overrides the catalog fingerprint; tests use it to
	// exercise the rejection path. Empty means CatalogFingerprint().
	Catalog string

	mu     sync.Mutex
	key    string // canonical fingerprint JSON of the cached runner
	runner *Runner
}

// Accept implements remote.Handler.
func (h *WorkerHandler) Accept(hello remote.Hello, artifacts remote.ArtifactFetcher) (remote.Session, error) {
	catalog := h.Catalog
	if catalog == "" {
		catalog = CatalogFingerprint()
	}
	if hello.Catalog != catalog {
		return nil, fmt.Errorf("catalog fingerprint mismatch (scheduler %.12s…, worker %.12s…): engine/dataset catalogs or record versions differ between the two builds", hello.Catalog, catalog)
	}
	var fp Fingerprint
	if err := json.Unmarshal(hello.Config, &fp); err != nil {
		return nil, fmt.Errorf("malformed run configuration: %v", err)
	}
	if fp.Version != checkpointVersion {
		return nil, fmt.Errorf("record version mismatch: scheduler writes v%d, worker v%d", fp.Version, checkpointVersion)
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	key := string(hello.Config)
	r := h.runner
	if r == nil || h.key != key {
		cfg := configFromFingerprint(fp)
		cfg.CellWorkers = h.CellWorkers
		cfg.DatasetCacheDir = h.DatasetCacheDir
		cfg.Mmap = h.Mmap
		cfg.NoOptimize = h.NoOptimize
		cfg.Progress = h.Progress
		var err error
		r, err = NewRunner(cfg)
		if err != nil {
			return nil, err
		}
		if jobs := r.planJobs(); len(jobs) != fp.Jobs {
			return nil, fmt.Errorf("grid plan drift: scheduler planned %d cells, worker plans %d", fp.Jobs, len(jobs))
		}
		h.key, h.runner = key, r
	}
	// Point dataset acquisition at this session's scheduler (latest
	// session wins — an older session's connection may already be
	// gone). A fetch over a dead connection just errors, and the
	// acquire path falls back to local generation.
	if h.FetchArtifacts && artifacts != nil {
		r.SetDatasetFetcher(artifacts.FetchArtifact)
	}
	return &workerSession{r: r}, nil
}

// workerSession executes cells of one accepted run.
type workerSession struct {
	r *Runner
}

// Execute implements remote.Session: it re-derives the grid plan from
// the shared fingerprint, verifies the scheduler's view of the cell
// matches, runs it, and returns the cell's measurements as the same
// cellRecord JSON the checkpoint file uses — which is exactly why
// remote results can flow through the scheduler's stream/checkpoint
// path unchanged.
func (s *workerSession) Execute(spec remote.CellSpec) ([]byte, error) {
	jobs := s.r.planJobs()
	if spec.Index < 0 || spec.Index >= len(jobs) {
		return nil, fmt.Errorf("cell index %d outside the %d-cell plan", spec.Index, len(jobs))
	}
	j := jobs[spec.Index]
	if spec.Kind != j.kind.String() || spec.Engine != j.engine || spec.Dataset != j.dataset {
		return nil, fmt.Errorf("cell %d plan mismatch: scheduler sent %s %s on %s, worker plans %s %s on %s",
			spec.Index, spec.Kind, spec.Engine, spec.Dataset, j.kind, j.engine, j.dataset)
	}
	c := s.r.runCell(j)
	if c.err != nil {
		return nil, c.err
	}
	rec := asRecord(spec.Index, c)
	return json.Marshal(&rec)
}

// OpenArtifact implements remote.ArtifactProvider: it serves one
// dataset snapshot artifact to a fetching worker, out of the
// scheduler's own -dataset-cache when it holds the artifact (acquiring
// the dataset — and thereby populating the cache — first if needed),
// and by encoding the in-memory graph straight onto the wire
// otherwise. Snapshot encoding is deterministic, so both paths ship
// the same bytes. Requests whose content address does not match this
// run's configuration are refused: the scheduler only ever serves the
// artifacts its own grid uses.
func (r *Runner) OpenArtifact(name string, fp [32]byte) (io.ReadCloser, error) {
	known := false
	for _, d := range r.cfg.Datasets {
		known = known || d == name
	}
	spec := datasets.ByName(name)
	if !known || spec == nil {
		return nil, fmt.Errorf("dataset %q is not part of this run", name)
	}
	want := datasets.SnapshotFingerprint(name, r.cfg.Scale, spec.Seed)
	if fp != want {
		return nil, fmt.Errorf("artifact fingerprint mismatch for %s (requested %x…, this run serves %x…)", name, fp[:6], want[:6])
	}
	// Acquiring the dataset populates the cache on a miss (when one is
	// configured) and pins the graph for the in-memory fallback.
	ds := r.dataset(name)
	if dir := r.cfg.DatasetCacheDir; dir != "" {
		if f, err := os.Open(datasets.SnapshotPath(dir, name, fp)); err == nil {
			r.progressf("artifact %s: streaming cached snapshot to remote worker", name)
			return f, nil
		}
	}
	// No on-disk artifact (no cache dir, or the store failed): encode
	// the graph for the wire directly. The encoder goroutine is joined
	// by Close: a reader that abandons the stream mid-transfer must not
	// leave a writer running against a graph the run may be tearing
	// down.
	r.progressf("artifact %s: streaming snapshot to remote worker", name)
	pr, pw := io.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		pw.CloseWithError(datasets.WriteSnapshot(pw, ds.g, ds.rawJSON, fp))
	}()
	return &joinedPipe{PipeReader: pr, join: wg.Wait}, nil
}

// joinedPipe is an artifact stream whose Close waits for the encoder
// goroutine: closing the read end makes the writer's next Write return
// ErrClosedPipe, so the goroutine exits promptly and Close returns
// only once it has.
type joinedPipe struct {
	*io.PipeReader
	join func()
}

func (p *joinedPipe) Close() error {
	err := p.PipeReader.Close()
	p.join()
	return err
}

// dialRemotes connects and handshakes every configured worker
// address. Any failure is fatal to the run: the user asked for those
// workers, and silently degrading to local-only would hide a typo or
// a mismatched build for the whole grid. artifacts, when non-nil,
// serves the workers' dataset artifact requests (Config.ServeArtifacts).
func dialRemotes(addrs []string, fp Fingerprint, artifacts remote.ArtifactProvider) ([]*remote.Client, error) {
	cfgJSON, err := json.Marshal(fp)
	if err != nil {
		return nil, fmt.Errorf("harness: remote: %w", err)
	}
	hello := remote.Hello{Catalog: CatalogFingerprint(), Config: cfgJSON}
	var clients []*remote.Client
	for _, a := range addrs {
		c, err := remote.Dial(a, hello, artifacts)
		if err != nil {
			for _, open := range clients {
				open.Close()
			}
			return nil, fmt.Errorf("harness: remote worker %s: %w", a, err)
		}
		clients = append(clients, c)
	}
	return clients, nil
}

// remoteSlot runs one dispatch slot of a remote worker: it pulls
// cells from the shared queue, ships them over the wire, and feeds
// the results into the same completion path local workers use. Any
// failure — worker death, drain, a refused cell — requeues the cell
// and retires the slot. The requeued cell is first offered to a
// *different* live remote (the dead worker is excluded from ever
// seeing it again); only when no other live remote exists does it
// fall back to the local-only queue. Either way the grid always
// completes with at least the local workers.
func (r *Runner) remoteSlot(id int, cl *remote.Client, sched *cellScheduler, jobs []gridJob, cells []cellResult, aborted *atomic.Bool, finish func(int)) {
	for {
		i, ok := sched.nextRemote(id)
		if !ok {
			return
		}
		if aborted.Load() {
			sched.done()
			return
		}
		j := jobs[i]
		r.progressf("remote %s: cell %d (%s %s on %s)", cl.Addr(), i, j.kind, j.engine, j.dataset)
		payload, err := cl.Execute(remote.CellSpec{Index: i, Kind: j.kind.String(), Engine: j.engine, Dataset: j.dataset})
		if err == nil {
			var rec cellRecord
			if uerr := json.Unmarshal(payload, &rec); uerr != nil {
				err = fmt.Errorf("remote %s: bad cell payload: %w", cl.Addr(), uerr)
			} else if rec.Index != i {
				err = fmt.Errorf("remote %s: cell %d answered with index %d", cl.Addr(), i, rec.Index)
			} else {
				cells[i] = rec.cell()
				// Workers always record failures as DNF and carry on;
				// under ErrorsFatal the scheduler restores local
				// semantics — a fatal cell aborts the grid no matter
				// where it ran.
				if r.cfg.ErrorsFatal {
					if ferr := cellFatalError(cells[i]); ferr != nil {
						cells[i].err = ferr
					}
				}
				finish(i)
				sched.done()
				continue
			}
		}
		if sched.requeueRemote(i, id) {
			r.progressf("remote %s: cell %d reassigned to another live remote: %v", cl.Addr(), i, err)
		} else {
			r.progressf("remote %s: cell %d reassigned locally: %v", cl.Addr(), i, err)
		}
		return
	}
}
