package harness

import "sync"

// cellScheduler coordinates one grid's pending cells between local
// worker goroutines and remote worker slots. It replaces the plain
// index counter of runPool with two queues:
//
//   - shared: cells any executor may take — with one restriction: a
//     remote that already failed a cell never gets that cell again;
//   - local: cells that must run locally — a cell comes here when
//     every live remote has either failed it or retired, so it can
//     never be lost (the DNF/requeue contract: worker deaths cost
//     wall-clock time, never results).
//
// When a remote worker dies mid-cell, the cell is first requeued to
// the *shared* queue with the dead worker excluded, so a different
// live remote can retry it; only when no such remote exists does it
// fall to the local-only queue. Local workers block while both queues
// are empty but cells are still in flight elsewhere: an in-flight
// remote cell may yet be requeued to them. Remote slots never block:
// once the shared queue holds nothing they may take, the slot retires.
type cellScheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	shared   []int
	local    []int
	inflight int
	stopped  bool

	// remoteSlots counts the live dispatch slots per remote executor
	// id; excluded[i] is the set of executor ids that already failed
	// cell i.
	remoteSlots map[int]int
	excluded    map[int]map[int]bool
}

func newCellScheduler(pending []int) *cellScheduler {
	s := &cellScheduler{
		shared:      append([]int(nil), pending...),
		remoteSlots: make(map[int]int),
		excluded:    make(map[int]map[int]bool),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// registerRemoteSlot announces one live dispatch slot of the given
// remote executor. Must be called before the slot starts pulling
// cells; balanced by retireRemoteSlot.
func (s *cellScheduler) registerRemoteSlot(executor int) {
	s.mu.Lock()
	s.remoteSlots[executor]++
	s.mu.Unlock()
}

// retireRemoteSlot retracts one slot of the executor. When an
// executor's last slot retires, cells waiting in the shared queue for
// "a different live remote" may now have none left — waking the local
// workers lets them reassess.
func (s *cellScheduler) retireRemoteSlot(executor int) {
	s.mu.Lock()
	s.remoteSlots[executor]--
	if s.remoteSlots[executor] <= 0 {
		delete(s.remoteSlots, executor)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// nextLocal returns the next cell for a local worker, blocking while
// cells are in flight elsewhere. ok is false when the grid is drained
// (or stopped): no pending cells anywhere and nothing in flight.
func (s *cellScheduler) nextLocal() (i int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		switch {
		case s.stopped:
			return 0, false
		case len(s.local) > 0:
			i, s.local = s.local[0], s.local[1:]
			s.inflight++
			return i, true
		case len(s.shared) > 0:
			i, s.shared = s.shared[0], s.shared[1:]
			s.inflight++
			return i, true
		case s.inflight == 0:
			return 0, false
		}
		s.cond.Wait()
	}
}

// nextRemote returns the next cell for a slot of the given remote
// executor, never blocking: it skips cells the executor has already
// failed, and an empty (or fully-excluded) shared queue retires the
// slot.
func (s *cellScheduler) nextRemote(executor int) (i int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return 0, false
	}
	for k, c := range s.shared {
		if s.excluded[c][executor] {
			continue
		}
		s.shared = append(s.shared[:k], s.shared[k+1:]...)
		s.inflight++
		return c, true
	}
	return 0, false
}

// done retires an in-flight cell and wakes waiting local workers (the
// grid may now be drained).
func (s *cellScheduler) done() {
	s.mu.Lock()
	s.inflight--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// requeueRemote returns a cell whose execution on the given remote
// executor failed. The cell goes back to the *front* of the shared
// queue — it is older than anything queued behind it — when a
// different live remote could still take it; otherwise it joins the
// local-only queue. Reports whether the cell stayed remotely
// available.
func (s *cellScheduler) requeueRemote(i, executor int) (retriableRemotely bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	ex := s.excluded[i]
	if ex == nil {
		ex = make(map[int]bool)
		s.excluded[i] = ex
	}
	ex[executor] = true
	for id, slots := range s.remoteSlots {
		if slots > 0 && !ex[id] {
			s.shared = append([]int{i}, s.shared...)
			s.cond.Broadcast()
			return true
		}
	}
	s.local = append(s.local, i)
	s.cond.Broadcast()
	return false
}

// stop drains the scheduler early: queued cells are dropped and every
// executor retires as soon as it finishes its current cell. Used when
// the grid aborts (ErrorsFatal, checkpoint write failure).
func (s *cellScheduler) stop() {
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
}
