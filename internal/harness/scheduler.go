package harness

import "sync"

// cellScheduler coordinates one grid's pending cells between local
// worker goroutines and remote worker slots. It replaces the plain
// index counter of runPool with two queues:
//
//   - shared: cells any executor may take;
//   - local: cells that must run locally — a cell comes here when the
//     remote worker executing it died, so it is never handed to
//     another remote again (the DNF/requeue contract: a worker death
//     costs at most a local re-execution, never a lost cell).
//
// Local workers block while both queues are empty but cells are still
// in flight elsewhere: an in-flight remote cell may yet be requeued to
// them. Remote slots never block: once the shared queue is empty, the
// remaining work is local-only or already placed.
type cellScheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	shared   []int
	local    []int
	inflight int
	stopped  bool
}

func newCellScheduler(pending []int) *cellScheduler {
	s := &cellScheduler{shared: append([]int(nil), pending...)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// nextLocal returns the next cell for a local worker, blocking while
// cells are in flight elsewhere. ok is false when the grid is drained
// (or stopped): no pending cells anywhere and nothing in flight.
func (s *cellScheduler) nextLocal() (i int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		switch {
		case s.stopped:
			return 0, false
		case len(s.local) > 0:
			i, s.local = s.local[0], s.local[1:]
			s.inflight++
			return i, true
		case len(s.shared) > 0:
			i, s.shared = s.shared[0], s.shared[1:]
			s.inflight++
			return i, true
		case s.inflight == 0:
			return 0, false
		}
		s.cond.Wait()
	}
}

// nextRemote returns the next cell for a remote slot, never blocking:
// an empty shared queue retires the slot.
func (s *cellScheduler) nextRemote() (i int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped || len(s.shared) == 0 {
		return 0, false
	}
	i, s.shared = s.shared[0], s.shared[1:]
	s.inflight++
	return i, true
}

// done retires an in-flight cell and wakes waiting local workers (the
// grid may now be drained).
func (s *cellScheduler) done() {
	s.mu.Lock()
	s.inflight--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// requeueLocal returns a cell whose remote execution failed to the
// local-only queue and wakes a local worker to take it.
func (s *cellScheduler) requeueLocal(i int) {
	s.mu.Lock()
	s.inflight--
	s.local = append(s.local, i)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// stop drains the scheduler early: queued cells are dropped and every
// executor retires as soon as it finishes its current cell. Used when
// the grid aborts (ErrorsFatal, checkpoint write failure).
func (s *cellScheduler) stop() {
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
}
