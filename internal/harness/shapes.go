package harness

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Shape is one qualitative finding of the paper's Section 6 that the
// reproduction is expected to exhibit: not an absolute number, but an
// ordering, a factor, or a failure mode. EXPERIMENTS.md is the prose
// record; this checker is the executable version.
type Shape struct {
	ID    string
	Paper string // the claim, as the paper states it
	Check func(res *Results) (ok bool, detail string)
	// Needs lists engines/datasets the check requires; it is skipped
	// when the run lacks them.
	NeedsEngines  []string
	NeedsDatasets []string
}

// helper: geometric mean of an engine's interactive latencies over a
// query set across all datasets; ok=false when any needed cell failed.
func (res *Results) catTime(engine string, queries ...string) (time.Duration, bool) {
	want := map[string]bool{}
	for _, q := range queries {
		want[q] = true
	}
	var ds []time.Duration
	for _, m := range res.Micro {
		if m.Engine != engine || m.Mode != ModeInteractive || !want[m.Query] {
			continue
		}
		if m.TimedOut || m.Failed {
			return 0, false
		}
		ds = append(ds, m.Elapsed)
	}
	if len(ds) == 0 {
		return 0, false
	}
	return geomean(ds), true
}

func (res *Results) loadTime(engine string) time.Duration {
	var ds []time.Duration
	for _, l := range res.Loads {
		if l.Engine == engine && !l.Failed {
			ds = append(ds, l.Elapsed)
		}
	}
	return geomean(ds)
}

func (res *Results) spaceTotal(engine string) int64 {
	var n int64
	for _, l := range res.Loads {
		if l.Engine == engine {
			n += l.Space.Total
		}
	}
	return n
}

func (res *Results) problems(engine string) int {
	n := 0
	for _, m := range res.Micro {
		if m.Engine == engine && (m.TimedOut || m.Failed) {
			n++
		}
	}
	return n
}

// fasterThan asserts a ≤ b (with slack factor).
func fasterThan(a, b time.Duration, slack float64) bool {
	return float64(a) <= slack*float64(b)
}

// Shapes returns the executable findings checklist.
func Shapes() []Shape {
	return []Shape{
		{
			ID:    "load-blaze-slowest",
			Paper: "BlazeGraph's per-statement index updates made it up to 3 orders of magnitude slower to load (§6.2)",
			Check: func(res *Results) (bool, string) {
				blaze := res.loadTime("blaze")
				worstOther := time.Duration(0)
				for _, e := range res.Config.Engines {
					if e == "blaze" {
						continue
					}
					if t := res.loadTime(e); t > worstOther {
						worstOther = t
					}
				}
				return blaze > worstOther, fmt.Sprintf("blaze=%v worst-other=%v", blaze, worstOther)
			},
			NeedsEngines: []string{"blaze"},
		},
		{
			ID:    "space-blaze-3x",
			Paper: "BlazeGraph requires on average three times the space of any other system (§6.2)",
			Check: func(res *Results) (bool, string) {
				blaze := res.spaceTotal("blaze")
				var worstOther int64
				for _, e := range res.Config.Engines {
					if e == "blaze" {
						continue
					}
					if s := res.spaceTotal(e); s > worstOther {
						worstOther = s
					}
				}
				return blaze >= 2*worstOther, fmt.Sprintf("blaze=%dMB worst-other=%dMB", blaze>>20, worstOther>>20)
			},
			NeedsEngines: []string{"blaze"},
		},
		{
			ID:    "neo-completes-everything",
			Paper: "Neo4j is the only system which successfully completed all tests on all datasets (§6.4)",
			Check: func(res *Results) (bool, string) {
				p19, p30 := res.problems("neo-1.9"), res.problems("neo-3.0")
				return p19 == 0 && p30 == 0, fmt.Sprintf("neo-1.9=%d neo-3.0=%d problems", p19, p30)
			},
			NeedsEngines: []string{"neo-1.9", "neo-3.0"},
		},
		{
			ID:    "sparksee-fastest-counts",
			Paper: "In counting nodes and edges, Sparksee has the best performance (§6.4)",
			Check: func(res *Results) (bool, string) {
				sp, ok := res.catTime("sparksee", "Q8", "Q9")
				if !ok {
					return false, "sparksee failed counts"
				}
				for _, e := range res.Config.Engines {
					if e == "sparksee" {
						continue
					}
					if t, ok := res.catTime(e, "Q8", "Q9"); ok && !fasterThan(sp, t, 1.5) {
						return false, fmt.Sprintf("sparksee=%v but %s=%v", sp, e, t)
					}
				}
				return true, fmt.Sprintf("sparksee=%v", sp)
			},
			NeedsEngines: []string{"sparksee"},
		},
		{
			ID:    "sqlg-fastest-label-search",
			Paper: "Q11–Q13 are some of the few queries where the RDBMS-backed Sqlg works best, an order of magnitude faster (§6.4)",
			Check: func(res *Results) (bool, string) {
				sq, ok := res.catTime("sqlg", "Q11", "Q12", "Q13")
				if !ok {
					return false, "sqlg failed search"
				}
				beats := 0
				for _, e := range res.Config.Engines {
					if e == "sqlg" {
						continue
					}
					if t, ok := res.catTime(e, "Q11", "Q12", "Q13"); ok && fasterThan(sq, t, 1.0) {
						beats++
					}
				}
				return beats >= len(res.Config.Engines)-2,
					fmt.Sprintf("sqlg=%v beats %d/%d engines", sq, beats, len(res.Config.Engines)-1)
			},
			NeedsEngines: []string{"sqlg"},
		},
		{
			ID:    "sqlg-slow-unfiltered-traversal",
			Paper: "Sqlg shows the expected low performance for traversal operations, via relational joins (§6.5)",
			Check: func(res *Results) (bool, string) {
				sq, ok := res.catTime("sqlg", "Q22", "Q23")
				if !ok {
					return false, "sqlg failed traversals"
				}
				slower := 0
				natives := []string{"neo-1.9", "neo-3.0", "orient"}
				for _, e := range natives {
					if t, ok := res.catTime(e, "Q22", "Q23"); ok && fasterThan(t, sq, 1.0) {
						slower++
					}
				}
				return slower == len(natives), fmt.Sprintf("sqlg=%v, slower than %d/%d natives", sq, slower, len(natives))
			},
			NeedsEngines: []string{"sqlg", "neo-1.9", "neo-3.0", "orient"},
		},
		{
			ID:    "sqlg-fast-labelled-hop",
			Paper: "Sqlg becomes much faster when a filter is posed on the label to traverse (§6.4)",
			Check: func(res *Results) (bool, string) {
				lab, ok1 := res.catTime("sqlg", "Q24")
				unlab, ok2 := res.catTime("sqlg", "Q22", "Q23")
				if !ok1 || !ok2 {
					return false, "sqlg failed hops"
				}
				return fasterThan(lab, unlab, 1.0), fmt.Sprintf("labelled=%v unfiltered=%v", lab, unlab)
			},
			NeedsEngines: []string{"sqlg"},
		},
		{
			ID:    "sparksee-fails-degree-freebase",
			Paper: "Sparksee cannot complete the degree-filter queries on the Freebase samples — memory exhaustion at the paper's scale; OOM or timeout here depending on which budget trips first (§6.4)",
			Check: func(res *Results) (bool, string) {
				fails := 0
				for _, m := range res.Micro {
					if m.Engine == "sparksee" && strings.HasPrefix(m.Dataset, "frb") &&
						(m.Query == "Q28" || m.Query == "Q29" || m.Query == "Q30") &&
						m.Mode == ModeInteractive && (m.Failed || m.TimedOut) {
						fails++
					}
				}
				return fails > 0, fmt.Sprintf("%d degree-filter non-completions on frb-*", fails)
			},
			NeedsEngines:  []string{"sparksee"},
			NeedsDatasets: []string{"frb-m"},
		},
		{
			ID:    "titan-deletes-faster-than-inserts",
			Paper: "Titan is slower in create operations but faster in deletions, due to the tombstone mechanism (§6.5)",
			Check: func(res *Results) (bool, string) {
				ins, ok1 := res.catTime("titan-1.0", "Q3", "Q4")
				del, ok2 := res.catTime("titan-1.0", "Q19")
				if !ok1 || !ok2 {
					return false, "titan failed CUD"
				}
				return fasterThan(del, ins, 1.0), fmt.Sprintf("insert=%v delete=%v", ins, del)
			},
			NeedsEngines: []string{"titan-1.0"},
		},
		{
			ID:    "neo30-cud-regression",
			Paper: "Neo4j v3.0 is more than an order of magnitude slower than its previous version on CUD (§6.4)",
			Check: func(res *Results) (bool, string) {
				old, ok1 := res.catTime("neo-1.9", "Q2", "Q3", "Q5")
				new30, ok2 := res.catTime("neo-3.0", "Q2", "Q3", "Q5")
				if !ok1 || !ok2 {
					return false, "neo failed CUD"
				}
				return new30 > old, fmt.Sprintf("v1.9=%v v3.0=%v", old, new30)
			},
			NeedsEngines: []string{"neo-1.9", "neo-3.0"},
		},
		{
			ID:    "native-beats-hybrid-on-bfs",
			Paper: "For traversal queries like BFS visits, the hybrid systems under-perform significantly (§6.5)",
			Check: func(res *Results) (bool, string) {
				neo, ok := res.catTime("neo-1.9", "Q32(d=3)")
				if !ok {
					return false, "neo failed BFS"
				}
				worse := 0
				hybrids := []string{"sqlg", "blaze"}
				for _, e := range hybrids {
					t, ok := res.catTime(e, "Q32(d=3)")
					// A hybrid under-performs when it failed outright or
					// is slower than the native engine.
					if !ok || fasterThan(neo, t, 1.0) {
						worse++
					}
				}
				return worse == len(hybrids), fmt.Sprintf("neo=%v, worse hybrids %d/%d", neo, worse, len(hybrids))
			},
			NeedsEngines: []string{"neo-1.9", "sqlg", "blaze"},
		},
		{
			ID:    "id-lookup-fast-everywhere",
			Paper: "Search by ID is much faster than other selections in all systems (§6.4)",
			Check: func(res *Results) (bool, string) {
				for _, e := range res.Config.Engines {
					byID, ok1 := res.catTime(e, "Q14", "Q15")
					scan, ok2 := res.catTime(e, "Q11")
					if ok1 && ok2 && !fasterThan(byID, scan, 1.0) {
						return false, fmt.Sprintf("%s: byID=%v scan=%v", e, byID, scan)
					}
				}
				return true, "id lookups beat property scans on every engine"
			},
		},
		{
			ID:    "index-speeds-q11",
			Paper: "With indexes, Q11 improves by 2 to 5 orders of magnitude for Neo4j 1.9, OrientDB, Titan, and up to 600x for Sqlg (§6.4)",
			Check: func(res *Results) (bool, string) {
				ix := res.index()
				improved := 0
				var checked int
				for _, e := range []string{"neo-1.9", "orient", "titan-0.5", "titan-1.0", "sqlg"} {
					for _, d := range res.Config.Datasets {
						plain, ok1 := ix[key{e, d, "Q11", ModeInteractive}]
						idx, ok2 := ix[key{e, d, "Q11(idx)", ModeInteractive}]
						if !ok1 || !ok2 || plain.TimedOut || idx.TimedOut {
							continue
						}
						checked++
						if idx.Elapsed < plain.Elapsed {
							improved++
						}
					}
				}
				return checked > 0 && improved*3 >= checked*2,
					fmt.Sprintf("index improved %d/%d engine-dataset cells", improved, checked)
			},
		},
		{
			// The paper's absolute ranking ("among the best") relied on
			// competitors paying JVM+disk costs that in-memory
			// substrates do not reproduce; the measurable part of the
			// claim is that ArangoDB's CUD latency is flat in dataset
			// size because writes are acknowledged from RAM.
			ID:    "arango-cud-size-independent",
			Paper: "With the only exception of BlazeGraph, all the databases are almost unaffected by the size of the dataset for insertions; for ArangoDB operations are registered in RAM (§6.4)",
			Check: func(res *Results) (bool, string) {
				ix := res.index()
				small, okS := ix[key{"arango", res.Config.Datasets[0], "Q2", ModeInteractive}]
				large, okL := ix[key{"arango", res.Config.Datasets[len(res.Config.Datasets)-1], "Q2", ModeInteractive}]
				if !okS || !okL || small.Failed || large.Failed {
					return false, "arango failed Q2"
				}
				return fasterThan(large.Elapsed, small.Elapsed, 10),
					fmt.Sprintf("Q2 %v on %s vs %v on %s", small.Elapsed, res.Config.Datasets[0], large.Elapsed, res.Config.Datasets[len(res.Config.Datasets)-1])
			},
			NeedsEngines: []string{"arango"},
		},
		{
			ID:    "batch-amortizes-cud-setup",
			Paper: "For CUD operations the batch takes less than 10 times one iteration (per-op setup dominates); for retrievals it is ~10x (§6.4)",
			Check: func(res *Results) (bool, string) {
				ix := res.index()
				okCells, total := 0, 0
				for _, e := range res.Config.Engines {
					for _, d := range res.Config.Datasets {
						one, ok1 := ix[key{e, d, "Q2", ModeInteractive}]
						bat, ok2 := ix[key{e, d, "Q2", ModeBatch}]
						if !ok1 || !ok2 || one.TimedOut || bat.TimedOut || one.Elapsed == 0 {
							continue
						}
						total++
						if bat.Elapsed < time.Duration(float64(one.Elapsed)*float64(res.Config.BatchSize)*1.5) {
							okCells++
						}
					}
				}
				return total > 0 && okCells*3 >= total*2, fmt.Sprintf("%d/%d cells amortized", okCells, total)
			},
		},
	}
}

// ReportShapes runs every applicable shape check against the results
// and prints a pass/fail table; it returns the number of failures.
func ReportShapes(res *Results, w io.Writer) int {
	has := func(list []string, name string) bool {
		for _, x := range list {
			if x == name {
				return true
			}
		}
		return false
	}
	failures := 0
	fmt.Fprintln(w, "Shape fidelity: paper findings vs this run")
	for _, s := range Shapes() {
		skip := false
		for _, e := range s.NeedsEngines {
			if !has(res.Config.Engines, e) {
				skip = true
			}
		}
		for _, d := range s.NeedsDatasets {
			if !has(res.Config.Datasets, d) {
				skip = true
			}
		}
		if skip {
			fmt.Fprintf(w, "  SKIP %-32s (engines/datasets not in run)\n", s.ID)
			continue
		}
		ok, detail := s.Check(res)
		status := "PASS"
		if !ok {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(w, "  %s %-32s %s\n", status, s.ID, detail)
		fmt.Fprintf(w, "       paper: %s\n", s.Paper)
	}
	fmt.Fprintln(w)
	return failures
}
