package harness

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// tinyConfig keeps harness tests fast: two contrasting engines, two
// small datasets including ldbc (for the complex workload).
func tinyConfig() Config {
	return Config{
		Engines:   []string{"neo-1.9", "sqlg"},
		Datasets:  []string{"frb-s", "ldbc"},
		Scale:     0.001,
		Timeout:   3 * time.Second,
		BatchSize: 3,
		Seed:      7,
		Isolation: true,
	}
}

var (
	tinyOnce sync.Once
	tinyRes  *Results
	tinyErr  error
)

// runTiny executes (once per test binary) a full evaluation at tiny
// scale; several tests assert different views of the same run, as they
// would against one published result set.
func runTiny(t *testing.T) *Results {
	t.Helper()
	tinyOnce.Do(func() {
		r, err := NewRunner(tinyConfig())
		if err != nil {
			tinyErr = err
			return
		}
		tinyRes, tinyErr = r.Run()
	})
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinyRes
}

func TestNewRunnerValidation(t *testing.T) {
	if _, err := NewRunner(Config{Engines: []string{"nope"}}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := NewRunner(Config{Datasets: []string{"nope"}}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	r, err := NewRunner(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Config().BatchSize != 10 || r.Config().Scale <= 0 {
		t.Fatalf("defaults not applied: %+v", r.Config())
	}
}

func TestRunProducesCompleteMeasurements(t *testing.T) {
	res := runTiny(t)
	cfg := tinyConfig()

	// Loads: one per engine × dataset, with space and raw size.
	if len(res.Loads) != len(cfg.Engines)*len(cfg.Datasets) {
		t.Fatalf("loads = %d", len(res.Loads))
	}
	for _, l := range res.Loads {
		if l.Space.Total <= 0 || l.RawJSON <= 0 {
			t.Fatalf("load %s/%s lacks space data: %+v", l.Engine, l.Dataset, l)
		}
	}

	// Micro: 33 plain queries + 4 depth-swept Q32 = 37 per mode per
	// engine per dataset.
	wantPerMode := 37 * len(cfg.Engines) * len(cfg.Datasets)
	var inter, batch int
	for _, m := range res.Micro {
		switch m.Mode {
		case ModeInteractive:
			inter++
		case ModeBatch:
			batch++
		}
	}
	if inter != wantPerMode || batch != wantPerMode {
		t.Fatalf("micro measurements: interactive=%d batch=%d, want %d each", inter, batch, wantPerMode)
	}

	// Stats for every dataset.
	if len(res.Stats) != len(cfg.Datasets) {
		t.Fatalf("stats = %d", len(res.Stats))
	}

	// Complex workload ran on ldbc for every engine.
	if len(res.Complex) != len(workload.ComplexQueries())*len(cfg.Engines) {
		t.Fatalf("complex = %d", len(res.Complex))
	}

	// Indexed Q11 ran for engines that support (or accept) indexes.
	if len(res.Indexed) == 0 {
		t.Fatal("no indexed measurements")
	}

	// Regression guard: the Neo4j-style engine completes every query at
	// this scale (the paper's "only system with zero timeouts"), in
	// both modes — a uniform batch failure here once indicated the
	// interactive run and batch iteration 0 sharing delete targets.
	for _, m := range res.Micro {
		if m.Engine == "neo-1.9" && (m.Failed || m.TimedOut) {
			t.Errorf("neo-1.9 %s %s %s failed: %s", m.Dataset, m.Query, m.Mode, m.Error)
		}
	}
}

func TestEnginesAgreeOnCounts(t *testing.T) {
	res := runTiny(t)
	// For every (dataset, query, mode) with no failures, all engines
	// must report the same result count — the cross-engine validity
	// check behind the paper's comparative claims.
	type k struct {
		ds, q string
		mode  Mode
	}
	counts := map[k]map[string]int64{}
	for _, m := range res.Micro {
		if m.TimedOut || m.Failed {
			continue
		}
		kk := k{m.Dataset, m.Query, m.Mode}
		if counts[kk] == nil {
			counts[kk] = map[string]int64{}
		}
		counts[kk][m.Engine] = m.Count
	}
	for kk, byEngine := range counts {
		var ref int64
		first := true
		for e, c := range byEngine {
			if first {
				ref, first = c, false
				continue
			}
			if c != ref {
				t.Errorf("%v: %s returned %d, others %d", kk, e, c, ref)
			}
		}
	}
}

func TestParamGenDisjointDeleteTargets(t *testing.T) {
	r, _ := NewRunner(tinyConfig())
	g := r.graph("frb-s")
	pg := NewParamGen(g, 7)
	res := identityLoadResult(g)
	q18 := workload.ByName("Q18")
	q19 := workload.ByName("Q19")
	seen := map[int64]bool{}
	for i := 0; i < 10; i++ {
		p := pg.For(q18, i, res)
		if seen[int64(p.V)] {
			t.Fatalf("Q18 iteration %d reuses vertex %d", i, p.V)
		}
		seen[int64(p.V)] = true
	}
	// Q19's edge pool must not collide across iterations either.
	seenE := map[int64]bool{}
	for i := 0; i < 10; i++ {
		p := pg.For(q19, i, res)
		if seenE[int64(p.E)] {
			t.Fatalf("Q19 iteration %d reuses edge %d", i, p.E)
		}
		seenE[int64(p.E)] = true
	}
	// Non-mutating queries keep a stable target across iterations.
	q23 := workload.ByName("Q23")
	p0 := pg.For(q23, 0, res)
	p5 := pg.For(q23, 5, res)
	if p0.V != p5.V {
		t.Fatal("read query target changed across iterations")
	}
}

// identityLoadResult maps dataset indexes to themselves, so parameter
// pool behaviour can be asserted without loading an engine.
func identityLoadResult(g *core.Graph) *core.LoadResult {
	res := &core.LoadResult{
		VertexIDs: make([]core.ID, g.NumVertices()),
		EdgeIDs:   make([]core.ID, g.NumEdges()),
	}
	for i := range res.VertexIDs {
		res.VertexIDs[i] = core.ID(i)
	}
	for i := range res.EdgeIDs {
		res.EdgeIDs[i] = core.ID(i)
	}
	return res
}
