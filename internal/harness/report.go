package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/datasets"
	"repro/internal/engines"
	"repro/internal/workload"
)

// key indexes measurements.
type key struct {
	engine, dataset, query string
	mode                   Mode
}

type index map[key]Measurement

func (res *Results) index() index {
	ix := index{}
	for _, m := range res.Micro {
		ix[key{m.Engine, m.Dataset, m.Query, m.Mode}] = m
	}
	for _, m := range res.Indexed {
		ix[key{m.Engine, m.Dataset, m.Query, m.Mode}] = m
	}
	for _, m := range res.Complex {
		ix[key{m.Engine, m.Dataset, m.Query, m.Mode}] = m
	}
	return ix
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func cell(m Measurement, ok bool) string {
	switch {
	case !ok:
		return "-"
	case m.TimedOut:
		return "TIMEOUT"
	case m.Failed && strings.HasPrefix(m.Error, "DNF"):
		return "DNF"
	case m.Failed && strings.Contains(m.Error, "memory"):
		return "OOM"
	case m.Failed:
		return "FAIL"
	default:
		return fmtDur(m.Elapsed)
	}
}

// matrix prints a fixed-width table: one row per engine, one column per
// col label, cells produced by get.
func matrix(w io.Writer, title string, engineNames, cols []string, get func(engine, col string) string) {
	fmt.Fprintf(w, "%s\n", title)
	width := 9
	for _, c := range cols {
		if len(c)+2 > width {
			width = len(c) + 2
		}
	}
	fmt.Fprintf(w, "%-12s", "engine")
	for _, c := range cols {
		fmt.Fprintf(w, "%*s", width, c)
	}
	fmt.Fprintln(w)
	for _, e := range engineNames {
		fmt.Fprintf(w, "%-12s", e)
		for _, c := range cols {
			fmt.Fprintf(w, "%*s", width, get(e, c))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// queryMatrix renders (engine × query) for one mode, one dataset group:
// columns are query@dataset.
func (res *Results) queryMatrix(w io.Writer, title string, queries []string, mode Mode) {
	ix := res.index()
	var cols []string
	for _, q := range queries {
		for _, d := range res.Config.Datasets {
			cols = append(cols, q+"@"+d)
		}
	}
	matrix(w, title, res.Config.Engines, cols, func(e, c string) string {
		parts := strings.SplitN(c, "@", 2)
		m, ok := ix[key{e, parts[1], parts[0], mode}]
		return cell(m, ok)
	})
}

// ReportTable1 prints the engine feature matrix (Table 1).
func ReportTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Features and characteristics of the tested systems")
	fmt.Fprintf(w, "%-12s %-8s %-12s %-38s %-16s %-8s %s\n",
		"engine", "kind", "substrate", "storage", "traversal", "gremlin", "execution")
	for _, n := range engines.Names() {
		e, err := engines.New(n)
		if err != nil {
			continue
		}
		m := e.Meta()
		fmt.Fprintf(w, "%-12s %-8s %-12s %-38s %-16s %-8s %s\n",
			m.Name, m.Kind, m.Substrate, m.Storage, m.EdgeTraversal, m.Gremlin, m.Execution)
		e.Close()
	}
	fmt.Fprintln(w)
}

// ReportTable2 prints the query list (Table 2).
func ReportTable2(w io.Writer) {
	fmt.Fprintln(w, "Table 2: Test queries by category")
	fmt.Fprintf(w, "%-5s %-3s %-46s %s\n", "query", "cat", "gremlin", "description")
	fmt.Fprintf(w, "%-5s %-3s %-46s %s\n", "Q1", "L", `g.loadGraphSON("/path")`, "Load dataset into the graph g")
	for _, q := range workload.Queries() {
		fmt.Fprintf(w, "%-5s %-3s %-46s %s\n", q.Name, q.Cat, q.Gremlin, q.Desc)
	}
	fmt.Fprintln(w)
}

// ReportTable3 prints dataset characteristics next to the paper's.
func ReportTable3(res *Results, w io.Writer) {
	fmt.Fprintf(w, "Table 3: Dataset characteristics (scale=%g; 'paper' rows are the full-size values)\n", res.Config.Scale)
	fmt.Fprintf(w, "%-8s %-9s %9s %9s %6s %8s %9s %10s %10s %7s %8s %4s\n",
		"dataset", "source", "|V|", "|E|", "|L|", "comps", "maxcomp", "density", "modular.", "avgdeg", "maxdeg", "diam")
	names := make([]string, 0, len(res.Stats))
	for n := range res.Stats {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		row := res.Stats[n]
		fmt.Fprintf(w, "%-8s %-9s %9d %9d %6d %8d %9d %10.2e %10.3f %7.1f %8d %4d\n",
			n, "measured", row.V, row.E, row.L, row.Components, row.MaxComp,
			row.Density, row.Modularity, row.AvgDeg, row.MaxDeg, row.Diameter)
		if spec := datasets.ByName(n); spec != nil {
			p := spec.Paper
			fmt.Fprintf(w, "%-8s %-9s %9d %9d %6d %8d %9d %10.2e %10.3f %7.1f %8d %4d\n",
				"", "paper", p.V, p.E, p.L, p.Components, p.MaxComp,
				p.Density, p.Modularity, p.AvgDeg, p.MaxDeg, p.Diameter)
		}
	}
	fmt.Fprintln(w)
}

// ReportFig1Space prints space occupancy per engine per dataset
// (Figure 1(a,b)), plus the raw GraphSON size.
func ReportFig1Space(res *Results, w io.Writer) {
	byDS := map[string]int64{}
	ix := map[string]map[string]int64{}
	dnfLoad := map[string]map[string]bool{}
	for _, l := range res.Loads {
		byDS[l.Dataset] = l.RawJSON
		if ix[l.Engine] == nil {
			ix[l.Engine] = map[string]int64{}
			dnfLoad[l.Engine] = map[string]bool{}
		}
		ix[l.Engine][l.Dataset] = l.Space.Total
		dnfLoad[l.Engine][l.Dataset] = l.Failed
	}
	matrix(w, "Figure 1(a,b): space occupancy (MB)", append(res.Config.Engines, "raw-json"),
		res.Config.Datasets, func(e, d string) string {
			if e == "raw-json" {
				return fmt.Sprintf("%.2f", float64(byDS[d])/(1<<20))
			}
			b, ok := ix[e][d]
			if !ok {
				return "-"
			}
			if dnfLoad[e][d] {
				return "DNF"
			}
			return fmt.Sprintf("%.2f", float64(b)/(1<<20))
		})
}

// ReportFig1cTimeouts prints the number of timed-out or failed queries
// per engine in interactive and batch mode (Figure 1(c)).
func ReportFig1cTimeouts(res *Results, w io.Writer) {
	counts := map[string]map[Mode]int{}
	for _, m := range res.Micro {
		if counts[m.Engine] == nil {
			counts[m.Engine] = map[Mode]int{}
		}
		if m.TimedOut || m.Failed {
			counts[m.Engine][m.Mode]++
		}
	}
	matrix(w, "Figure 1(c): # timeouts/failures, Interactive (I) and Batch (B)",
		res.Config.Engines, []string{"I", "B"}, func(e, c string) string {
			mode := ModeInteractive
			if c == "B" {
				mode = ModeBatch
			}
			return fmt.Sprintf("%d", counts[e][mode])
		})
}

// ReportFig2Complex prints the complex query latencies on ldbc.
func ReportFig2Complex(res *Results, w io.Writer) {
	ix := res.index()
	var cols []string
	for _, cq := range workload.ComplexQueries() {
		cols = append(cols, cq.Name)
	}
	matrix(w, "Figure 2: complex query performance on ldbc",
		res.Config.Engines, cols, func(e, c string) string {
			m, ok := ix[key{e, "ldbc", c, ModeInteractive}]
			return cell(m, ok)
		})
}

// ReportFig3Load prints loading times (Figure 3(a)).
func ReportFig3Load(res *Results, w io.Writer) {
	ix := map[string]map[string]time.Duration{}
	dnfLoad := map[string]map[string]bool{}
	for _, l := range res.Loads {
		if ix[l.Engine] == nil {
			ix[l.Engine] = map[string]time.Duration{}
			dnfLoad[l.Engine] = map[string]bool{}
		}
		ix[l.Engine][l.Dataset] = l.Elapsed
		dnfLoad[l.Engine][l.Dataset] = l.Failed
	}
	matrix(w, "Figure 3(a): loading time", res.Config.Engines, res.Config.Datasets,
		func(e, d string) string {
			t, ok := ix[e][d]
			if !ok {
				return "-"
			}
			if dnfLoad[e][d] {
				return "DNF"
			}
			return fmtDur(t)
		})
}

// ReportFig3Insert prints Q2–Q7 (Figure 3(b)).
func ReportFig3Insert(res *Results, w io.Writer) {
	res.queryMatrix(w, "Figure 3(b): insertions (interactive)",
		[]string{"Q2", "Q3", "Q4", "Q5", "Q6", "Q7"}, ModeInteractive)
}

// ReportFig3UpdateDelete prints Q16–Q21 (Figure 3(c)).
func ReportFig3UpdateDelete(res *Results, w io.Writer) {
	res.queryMatrix(w, "Figure 3(c): updates and deletions (interactive)",
		[]string{"Q16", "Q17", "Q18", "Q19", "Q20", "Q21"}, ModeInteractive)
}

// ReportFig4Select prints Q8–Q13 (Figure 4(a)).
func ReportFig4Select(res *Results, w io.Writer) {
	res.queryMatrix(w, "Figure 4(a): scans and selections (interactive)",
		[]string{"Q8", "Q9", "Q10", "Q11", "Q12", "Q13"}, ModeInteractive)
}

// ReportFig4ByID prints Q14–Q15 (Figure 4(b)).
func ReportFig4ByID(res *Results, w io.Writer) {
	res.queryMatrix(w, "Figure 4(b): search by id (interactive)",
		[]string{"Q14", "Q15"}, ModeInteractive)
}

// ReportFig4cIndex prints Q11 with an attribute index (Figure 4(c)),
// plus the index-maintenance cost on property insertion (the §6.4
// "insertions become slower" observation).
func ReportFig4cIndex(res *Results, w io.Writer) {
	res.queryMatrix(w, "Figure 4(c): Q11 with attribute index (engines without exploitable indexes keep their scan time; blaze unsupported)",
		[]string{"Q11", "Q11(idx)"}, ModeInteractive)
	res.queryMatrix(w, "Section 6.4: index maintenance cost on property insertion",
		[]string{"Q5", "Q5(idx)"}, ModeInteractive)
}

// ReportFig5Local prints Q22–Q27 (Figure 5(a)).
func ReportFig5Local(res *Results, w io.Writer) {
	res.queryMatrix(w, "Figure 5(a): local traversals (interactive)",
		[]string{"Q22", "Q23", "Q24", "Q25", "Q26", "Q27"}, ModeInteractive)
}

// ReportFig5Degree prints Q28–Q31 (Figure 5(b)).
func ReportFig5Degree(res *Results, w io.Writer) {
	res.queryMatrix(w, "Figure 5(b): degree filters over all nodes (interactive)",
		[]string{"Q28", "Q29", "Q30", "Q31"}, ModeInteractive)
}

// ReportFig6BFS prints Q32 at depths 2–5 (Figure 6).
func ReportFig6BFS(res *Results, w io.Writer) {
	res.queryMatrix(w, "Figure 6: breadth-first traversal at depth 2-5 (interactive)",
		[]string{"Q32(d=2)", "Q32(d=3)", "Q32(d=4)", "Q32(d=5)"}, ModeInteractive)
}

// ReportFig7SP prints Q34 (Figure 7(a)) and the label-constrained
// variants Q33/Q35 (Figure 7(b), meaningful on ldbc).
func ReportFig7SP(res *Results, w io.Writer) {
	res.queryMatrix(w, "Figure 7(a): unlabelled shortest path (interactive)",
		[]string{"Q34"}, ModeInteractive)
	res.queryMatrix(w, "Figure 7(b): label-constrained BFS and shortest path (interactive)",
		[]string{"Q33", "Q35"}, ModeInteractive)
}

// ReportFig7Overall prints cumulative times for single and batch
// executions (Figure 7(c,d)). Timed-out and failed cells (including
// DNF, whose recorded time is zero) are charged the timeout, as the
// paper's cumulative plots do — a broken engine must not rank best.
func ReportFig7Overall(res *Results, w io.Writer) {
	tot := map[string]map[Mode]time.Duration{}
	for _, m := range res.Micro {
		if tot[m.Engine] == nil {
			tot[m.Engine] = map[Mode]time.Duration{}
		}
		d := m.Elapsed
		if m.TimedOut || m.Failed {
			d = res.Config.Timeout
		}
		tot[m.Engine][m.Mode] += d
	}
	matrix(w, "Figure 7(c,d): cumulative time over the whole micro workload",
		res.Config.Engines, []string{"interactive", "batch"}, func(e, c string) string {
			return fmtDur(tot[e][Mode(c)])
		})
}

// geomean of positive durations; zero when empty.
func geomean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range ds {
		v := float64(d)
		if v < 1 {
			v = 1
		}
		sum += math.Log(v)
	}
	return time.Duration(math.Exp(sum / float64(len(ds))))
}
