package harness

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestExportImportJSONRoundTrip(t *testing.T) {
	res := runTiny(t)
	var buf bytes.Buffer
	if err := ExportJSON(res, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ImportJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Micro) != len(res.Micro) || len(got.Loads) != len(res.Loads) ||
		len(got.Complex) != len(res.Complex) || len(got.Indexed) != len(res.Indexed) {
		t.Fatalf("round trip lost measurements: %d/%d micro", len(got.Micro), len(res.Micro))
	}
	if got.Config.Scale != res.Config.Scale || got.Config.BatchSize != res.Config.BatchSize {
		t.Fatalf("config lost: %+v", got.Config)
	}
	// Engines/datasets reconstructed for report rendering.
	if len(got.Config.Engines) != len(res.Config.Engines) {
		t.Fatalf("engines = %v", got.Config.Engines)
	}
	var out bytes.Buffer
	ReportFig3Load(got, &out)
	if !strings.Contains(out.String(), "frb-s") {
		t.Fatal("imported results cannot render reports")
	}
}

func TestImportJSONRejectsGarbage(t *testing.T) {
	if _, err := ImportJSON(strings.NewReader("{broken")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestExportCSV(t *testing.T) {
	res := runTiny(t)
	var buf bytes.Buffer
	if err := ExportCSV(res, &buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + len(res.Loads) + len(res.Micro) + len(res.Indexed) + len(res.Complex)
	if len(rows) != want {
		t.Fatalf("csv rows = %d, want %d", len(rows), want)
	}
	if rows[0][0] != "engine" || len(rows[0]) != 8 {
		t.Fatalf("header = %v", rows[0])
	}
	// Q1 rows present (loads).
	foundQ1 := false
	for _, r := range rows[1:] {
		if r[2] == "Q1" {
			foundQ1 = true
		}
		if len(r) != 8 {
			t.Fatalf("ragged row %v", r)
		}
	}
	if !foundQ1 {
		t.Fatal("no Q1 load rows in CSV")
	}
}

func TestShapesRunOnTinyResults(t *testing.T) {
	res := runTiny(t)
	var buf bytes.Buffer
	ReportShapes(res, &buf)
	out := buf.String()
	// The tiny run only has neo-1.9 and sqlg: engine-specific checks
	// must be skipped, not failed.
	if !strings.Contains(out, "SKIP") {
		t.Error("expected skipped checks for missing engines")
	}
	// The cross-engine checks that do apply must be present.
	for _, id := range []string{"id-lookup-fast-everywhere", "index-speeds-q11", "batch-amortizes-cud-setup"} {
		if !strings.Contains(out, id) {
			t.Errorf("missing shape %s:\n%s", id, out)
		}
	}
}

func TestShapesHaveUniqueIDsAndClaims(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Shapes() {
		if s.ID == "" || s.Paper == "" || s.Check == nil {
			t.Fatalf("incomplete shape %+v", s)
		}
		if seen[s.ID] {
			t.Fatalf("duplicate shape id %s", s.ID)
		}
		seen[s.ID] = true
	}
	if len(seen) < 12 {
		t.Fatalf("expected a substantial findings checklist, got %d", len(seen))
	}
}
