package harness

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"strings"
	"text/tabwriter"
	"time"
)

// Status summarizes a checkpoint file without executing anything: how
// much of the planned grid is done, what remains, and which completed
// cells the paper would report as DNF. The plan is re-derived from the
// checkpoint's own header fingerprint, so no run configuration (and no
// dataset generation) is needed — reading a multi-hour run's progress
// costs milliseconds.
type Status struct {
	Path        string
	Fingerprint Fingerprint
	Total       int // planned grid cells
	Done        int // cells with a checkpoint record
	DNF         int // done cells recording a did-not-finish
	Engines     []EngineStatus
}

// EngineStatus is the per-engine slice of a Status, in the run's
// engine order.
type EngineStatus struct {
	Engine string
	Total  int
	Done   int
	DNF    int
}

// Remaining returns the number of cells a resumed run would execute.
func (s *Status) Remaining() int { return s.Total - s.Done }

// ReadStatus reads a checkpoint file and summarizes its progress per
// engine. The -status command renders its result.
func ReadStatus(path string) (*Status, error) {
	fp, cells, err := readCheckpoint(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return nil, fmt.Errorf("harness: no checkpoint at %s", path)
	case errors.Is(err, errCheckpointEmpty):
		return nil, fmt.Errorf("harness: checkpoint %s is empty (the run crashed before its header was written); a resumed run starts fresh", path)
	case err != nil:
		return nil, err
	}

	// The same drift guards resume applies: a checkpoint from a build
	// with a different record format, or whose plan no longer matches
	// this build's planGrid, would silently misattribute every record.
	if fp.Version != checkpointVersion {
		return nil, fmt.Errorf("harness: checkpoint %s was written with record format v%d; this build reads v%d", path, fp.Version, checkpointVersion)
	}
	jobs := planGrid(fp.Engines, fp.Datasets)
	if fp.Jobs != len(jobs) {
		return nil, fmt.Errorf("harness: checkpoint %s planned %d cells but this build plans %d for the same engines and datasets; the builds are incompatible", path, fp.Jobs, len(jobs))
	}
	st := &Status{Path: path, Fingerprint: fp, Total: len(jobs)}
	st.Engines = make([]EngineStatus, len(fp.Engines))
	per := make(map[string]*EngineStatus, len(fp.Engines))
	for i, e := range fp.Engines {
		st.Engines[i] = EngineStatus{Engine: e}
		per[e] = &st.Engines[i]
	}
	for i, j := range jobs {
		es := per[j.engine]
		es.Total++
		c, ok := cells[i]
		if !ok {
			continue
		}
		st.Done++
		es.Done++
		if cellDNF(c) {
			st.DNF++
			es.DNF++
		}
	}
	return st, nil
}

// cellFatalError is the one scanner for the paper's DNF in a completed
// cell — a failed load, or any dependent measurement marked "DNF: …" —
// returning the underlying error. The -status DNF count (cellDNF) and
// the remote ErrorsFatal reconstruction both build on it, so the DNF
// encoding has a single reader to keep in sync with dnf().
func cellFatalError(c cellResult) error {
	for _, l := range c.loads {
		if l.Failed {
			return errors.New(l.Error)
		}
	}
	for _, ms := range [][]Measurement{c.micro, c.indexed, c.complex} {
		for _, m := range ms {
			if m.Failed && strings.HasPrefix(m.Error, "DNF: ") {
				return errors.New(strings.TrimPrefix(m.Error, "DNF: "))
			}
		}
	}
	return nil
}

// cellDNF reports whether a completed cell recorded the paper's DNF.
func cellDNF(c cellResult) bool { return cellFatalError(c) != nil }

// Render prints the summary: one headline, the identifying config, and
// a per-engine table.
func (s *Status) Render(w io.Writer) {
	fmt.Fprintf(w, "checkpoint %s: %d/%d cells done, %d remaining, %d DNF\n",
		s.Path, s.Done, s.Total, s.Remaining(), s.DNF)
	fp := s.Fingerprint
	fmt.Fprintf(w, "run: engines=%s datasets=%s scale=%g seed=%d batch=%d timeout=%s",
		strings.Join(fp.Engines, ","), strings.Join(fp.Datasets, ","),
		fp.Scale, fp.Seed, fp.BatchSize, time.Duration(fp.TimeoutNS))
	if fp.Frozen {
		fmt.Fprint(w, " frozen-clock")
	}
	fmt.Fprintln(w)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tdone\tremaining\tdnf")
	for _, es := range s.Engines {
		fmt.Fprintf(tw, "%s\t%d/%d\t%d\t%d\n", es.Engine, es.Done, es.Total, es.Total-es.Done, es.DNF)
	}
	tw.Flush()
}
