package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exportRun executes a full run under the given config and returns the
// ExportJSON bytes plus the number of cells actually executed (counted
// from the progress stream).
func exportRun(t *testing.T, cfg Config) ([]byte, int) {
	t.Helper()
	var progress bytes.Buffer
	cfg.Progress = &progress
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportJSON(res, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), executedCells(progress.String())
}

// executedCells counts grid cells that were actually executed (restored
// cells emit no per-cell progress line).
func executedCells(progress string) int {
	n := 0
	for _, line := range strings.Split(progress, "\n") {
		if strings.HasPrefix(line, "micro-i ") || strings.HasPrefix(line, "micro-b ") ||
			strings.HasPrefix(line, "indexed ") || strings.HasPrefix(line, "complex ") {
			n++
		}
	}
	return n
}

// TestCheckpointResumeByteIdentical is the acceptance contract of the
// streaming checkpoint: a run interrupted after N cells (simulated by
// truncating the checkpoint mid-record, the exact footprint of a crash)
// and resumed re-executes only the missing cells, and its ExportJSON is
// byte-identical to an uninterrupted run.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig()
	cfg.BatchSize = 2
	cfg.FrozenClock = true

	cfg.CheckpointPath = filepath.Join(dir, "fresh.jsonl")
	fresh, freshCells := exportRun(t, cfg)
	if freshCells == 0 {
		t.Fatal("fresh run executed no cells")
	}

	// Second full run on its own checkpoint, which we then truncate to a
	// 4-complete-cell prefix plus a torn half record.
	cfg.CheckpointPath = filepath.Join(dir, "interrupted.jsonl")
	exportRun(t, cfg)
	raw, err := os.ReadFile(cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	const keep = 4
	if len(lines) < keep+3 { // header + keep cells + one to tear
		t.Fatalf("checkpoint too small to truncate: %d lines", len(lines))
	}
	truncated := bytes.Join(lines[:1+keep], nil)
	torn := lines[1+keep]
	truncated = append(truncated, torn[:len(torn)/2]...)
	if err := os.WriteFile(cfg.CheckpointPath, truncated, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg.Resume = true
	resumed, resumedCells := exportRun(t, cfg)

	if !bytes.Equal(fresh, resumed) {
		t.Fatalf("resumed export diverges from fresh run:\nfresh   %d bytes\nresumed %d bytes", len(fresh), len(resumed))
	}
	if want := freshCells - keep; resumedCells != want {
		t.Fatalf("resumed run executed %d cells, want %d (only the missing ones)", resumedCells, want)
	}

	// After the resumed run, the checkpoint must be complete again: a
	// second resume restores everything and executes nothing.
	_, again := exportRun(t, cfg)
	if again != 0 {
		t.Fatalf("second resume re-executed %d cells, want 0", again)
	}
}

// TestCheckpointFingerprintMismatch: a checkpoint written under a
// different configuration must be rejected, not silently replayed.
func TestCheckpointFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig()
	cfg.Datasets = []string{"frb-s"}
	cfg.BatchSize = 2
	cfg.FrozenClock = true
	cfg.CheckpointPath = filepath.Join(dir, "cp.jsonl")
	exportRun(t, cfg)

	cfg.Resume = true
	cfg.Seed = cfg.Seed + 1
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("incompatible checkpoint accepted: %v", err)
	}

	// A missing checkpoint with Resume set starts fresh instead.
	cfg.CheckpointPath = filepath.Join(dir, "absent.jsonl")
	if _, cells := exportRun(t, cfg); cells == 0 {
		t.Fatal("resume from missing checkpoint executed nothing")
	}
}

func TestResumeRequiresCheckpointPath(t *testing.T) {
	cfg := tinyConfig()
	cfg.Resume = true
	if _, err := NewRunner(cfg); err == nil {
		t.Fatal("Resume without CheckpointPath accepted")
	}
	cfg.Resume = false
	cfg.CrashAfterCells = 1
	if _, err := NewRunner(cfg); err == nil {
		t.Fatal("CrashAfterCells without CheckpointPath accepted")
	}
}

type crashSentinel struct{}

// TestCrashAfterCellsResume exercises the fault-injection path end to
// end in-process: the run "crashes" (via the substituted exit hook)
// after 2 streamed cells, and a resumed run completes with a
// byte-identical export.
func TestCrashAfterCellsResume(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig()
	cfg.Datasets = []string{"frb-s"}
	cfg.BatchSize = 2
	cfg.FrozenClock = true

	cfg.CheckpointPath = filepath.Join(dir, "fresh.jsonl")
	fresh, _ := exportRun(t, cfg)

	cfg.CheckpointPath = filepath.Join(dir, "crash.jsonl")
	cfg.CrashAfterCells = 2
	cfg.Workers = 1 // the crash panic must unwind the Run goroutine
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.exit = func(int) { panic(crashSentinel{}) }
	func() {
		defer func() {
			if rec := recover(); rec == nil {
				t.Fatal("CrashAfterCells did not crash")
			} else if _, ok := rec.(crashSentinel); !ok {
				panic(rec)
			}
		}()
		r.Run()
	}()

	cfg.CrashAfterCells = 0
	cfg.Resume = true
	resumed, cells := exportRun(t, cfg)
	if !bytes.Equal(fresh, resumed) {
		t.Fatal("post-crash resume diverges from uninterrupted run")
	}
	if cells == 0 {
		t.Fatal("resume after crash executed nothing")
	}
}

// TestCrashBetweenMicroHalvesResume pins the sub-cell checkpoint
// granularity: the interactive (micro-i) and batch (micro-b) halves of
// a micro cell are separate grid cells, so a crash landing exactly
// between them loses only the batch half. The resumed run must restore
// micro-i from the checkpoint, re-execute micro-b (and everything
// after), and export byte-identically to an uninterrupted run.
func TestCrashBetweenMicroHalvesResume(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig()
	cfg.Engines = []string{"sqlg"}
	cfg.Datasets = []string{"frb-s"}
	cfg.BatchSize = 2
	cfg.FrozenClock = true

	// Plan for one engine on one dataset: micro-i, micro-b, indexed.
	cfg.CheckpointPath = filepath.Join(dir, "fresh.jsonl")
	fresh, freshCells := exportRun(t, cfg)
	if freshCells != 3 {
		t.Fatalf("plan executed %d cells, want 3 (micro-i, micro-b, indexed)", freshCells)
	}

	// Crash after exactly one streamed cell: micro-i is checkpointed,
	// micro-b is not — the crash falls on the half boundary.
	cfg.CheckpointPath = filepath.Join(dir, "crash.jsonl")
	cfg.CrashAfterCells = 1
	cfg.Workers = 1
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.exit = func(int) { panic(crashSentinel{}) }
	func() {
		defer func() {
			if rec := recover(); rec == nil {
				t.Fatal("CrashAfterCells did not crash")
			} else if _, ok := rec.(crashSentinel); !ok {
				panic(rec)
			}
		}()
		r.Run()
	}()

	cfg.CrashAfterCells = 0
	cfg.Resume = true
	resumed, resumedCells := exportRun(t, cfg)
	if resumedCells != freshCells-1 {
		t.Fatalf("resume executed %d cells, want %d (micro-i restored, micro-b + indexed re-run)", resumedCells, freshCells-1)
	}
	if !bytes.Equal(fresh, resumed) {
		t.Fatalf("half-boundary resume diverges from uninterrupted run:\nfresh   %d bytes\nresumed %d bytes", len(fresh), len(resumed))
	}
}

// TestCellWorkersDeterministic: parallel batch iterations must not
// change any measurement. titan-1.0 is included deliberately (its read
// path goes through the lsm row cache), as are arango (read-path REST
// accounting) and sparksee (stateful retention model, which vetoes
// fan-out via core.ConcurrentReader) — all must stay race-free and
// deterministic under the concurrent reads CellWorkers introduces
// (verified by -race).
func TestCellWorkersDeterministic(t *testing.T) {
	run := func(cellWorkers int) []byte {
		cfg := tinyConfig()
		cfg.Engines = []string{"neo-1.9", "sqlg", "titan-1.0", "arango", "sparksee"}
		cfg.Datasets = []string{"frb-s"}
		cfg.BatchSize = 4
		cfg.CellWorkers = cellWorkers
		cfg.FrozenClock = true
		out, _ := exportRun(t, cfg)
		return out
	}
	seq := run(1)
	par := run(8)
	if !bytes.Equal(seq, par) {
		t.Fatal("cell-parallel export diverges from sequential")
	}
}
