package harness

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engines"
	"repro/internal/engines/titan"
)

// TestLoadIntoDurable checks the Config.LSMDir plumbing: a durable-
// capable engine opens over a WAL in a unique subdirectory, loads the
// dataset through the logged bulk path, and the directory holds a
// recoverable store; a non-capable engine still loads volatile.
func TestLoadIntoDurable(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRunner(Config{
		Engines:  []string{"titan-1.0", "sqlg"},
		Datasets: []string{"yeast"},
		Scale:    0.02,
		LSMDir:   dir,
	})
	if err != nil {
		t.Fatal(err)
	}

	e, res, _, err := r.loadInto("titan-1.0", "yeast")
	if err != nil {
		t.Fatal(err)
	}
	nv, _ := e.CountVertices()
	if nv == 0 || len(res.VertexIDs) == 0 {
		t.Fatal("durable load produced an empty engine")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected one store directory under LSMDir, found %d", len(entries))
	}
	store := filepath.Join(dir, entries[0].Name())
	re, rst, err := titan.Open(titan.V10, store)
	if err != nil {
		t.Fatalf("reopen harness store: %v", err)
	}
	defer re.Close()
	if rst.BulkLoads != 1 {
		t.Fatalf("replayed %d bulk loads, want 1", rst.BulkLoads)
	}
	if rnv, _ := re.CountVertices(); rnv != nv {
		t.Fatalf("recovered %d vertices, want %d", rnv, nv)
	}

	// sqlg has no durable substrate: it loads volatile and leaves no
	// second directory behind.
	v, _, _, err := r.loadInto("sqlg", "yeast")
	if err != nil {
		t.Fatal(err)
	}
	v.Close()
	entries, _ = os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("volatile engine created a store directory (%d entries)", len(entries))
	}
	if !engines.SupportsDurable("titan-0.5") || engines.SupportsDurable("sqlg") {
		t.Fatal("SupportsDurable misreports")
	}
}
