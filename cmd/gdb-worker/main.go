// Command gdb-worker serves evaluation grid cells to a remote
// gdb-bench scheduler, letting one grid span machines: start a worker
// on each spare machine, point the scheduler at them with
// -remote host:port, and the workers' slots join the local ones.
//
// Usage:
//
//	gdb-worker [flags]
//
//	-listen       address to serve on (default :9777)
//	-capacity     concurrent cells this worker accepts (default: all CPUs)
//	-cell-workers parallel batch iterations inside one cell (non-mutating
//	              queries only; results are identical for any value)
//	-gen-workers  parallel dataset-generation workers (default: all CPUs)
//	-dataset-cache reuse dataset snapshot artifacts from this directory;
//	              a fleet of workers pointed at warm caches skips the
//	              per-process V+E dataset generation entirely
//	-artifact-fetch fetch missing dataset artifacts from the scheduler
//	              over the session connection before generating locally
//	              (default true) — a cold worker seeds its cache off the
//	              scheduler's warm one instead of regenerating graphs
//	-heartbeat    liveness interval announced to schedulers (default 2s)
//	-v            print per-cell progress to stderr
//
// The handshake requires the worker and scheduler builds to have
// identical engine and dataset catalogs (the catalog fingerprint), so
// measurements from diverged builds can never mix. SIGINT/SIGTERM
// drains gracefully: in-flight cells finish and their results reach
// the scheduler, new cells are refused (the scheduler reassigns them
// locally), then the process exits.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/datasets"
	"repro/internal/harness"
	"repro/internal/remote"
)

// options holds every gdb-worker flag, declared through defineFlags so
// the doc-sync test can enumerate them.
type options struct {
	listen        string
	capacity      int
	cellWorkers   int
	genWorkers    int
	datasetCache  string
	mmap          bool
	artifactFetch bool
	optimize      bool
	heartbeat     time.Duration
	verbose       bool
}

func defineFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.listen, "listen", ":9777", "address to serve grid cells on")
	fs.IntVar(&o.capacity, "capacity", runtime.NumCPU(), "concurrent cells this worker accepts")
	fs.IntVar(&o.cellWorkers, "cell-workers", 1, "parallel batch iterations per cell (non-mutating queries)")
	fs.IntVar(&o.genWorkers, "gen-workers", runtime.NumCPU(), "parallel dataset generation workers")
	fs.StringVar(&o.datasetCache, "dataset-cache", "", "reuse dataset snapshot artifacts from this directory (populated on miss)")
	fs.BoolVar(&o.mmap, "mmap", false, "memory-map warm -dataset-cache artifacts instead of decoding them onto the heap (identical results)")
	fs.BoolVar(&o.artifactFetch, "artifact-fetch", true, "fetch missing dataset artifacts from the scheduler before generating locally")
	fs.BoolVar(&o.optimize, "optimize", true, "enable the gremlin plan optimizer for accepted runs; -optimize=false executes plans exactly as written (identical results)")
	fs.DurationVar(&o.heartbeat, "heartbeat", remote.DefaultHeartbeat, "liveness interval announced to schedulers")
	fs.BoolVar(&o.verbose, "v", false, "print per-cell progress to stderr")
	return o
}

func main() {
	o := defineFlags(flag.CommandLine)
	flag.Parse()

	datasets.SetGenWorkers(o.genWorkers)
	h := &harness.WorkerHandler{CellWorkers: o.cellWorkers, DatasetCacheDir: o.datasetCache, Mmap: o.mmap, FetchArtifacts: o.artifactFetch, NoOptimize: !o.optimize}
	if o.verbose {
		h.Progress = os.Stderr
	}
	srv := &remote.Server{
		Handler:   h,
		Capacity:  o.capacity,
		Heartbeat: o.heartbeat,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "gdb-worker: "+format+"\n", args...)
		},
	}

	l, err := net.Listen("tcp", o.listen)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gdb-worker: serving %d slots on %s (catalog %.12s…)\n",
		o.capacity, l.Addr(), harness.CatalogFingerprint())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "gdb-worker: draining (in-flight cells finish, new cells are refused)")
		srv.Drain()
	}()

	if err := srv.Serve(l); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "gdb-worker: drained")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gdb-worker:", err)
	os.Exit(1)
}
