// Command gdb-bench runs the micro-benchmark evaluation and prints the
// paper's tables and figures.
//
// Usage:
//
//	gdb-bench [flags]
//
//	-engines      comma-separated engine names (default: all nine)
//	-datasets     comma-separated dataset names (default: frb-s,frb-o,frb-m,frb-l)
//	-scale        dataset scale factor, 1.0 = paper sizes (default 0.002)
//	-timeout      per-query timeout (default 2s; the paper used 2h at full scale)
//	-batch        batch size (default 10, as in the paper)
//	-seed         random seed for parameter selection
//	-workers      parallel grid workers (default: all CPUs; results are
//	              identical for any worker count)
//	-cell-workers parallel batch iterations inside one cell (non-mutating
//	              queries only; results are identical for any value)
//	-gen-workers  parallel dataset-generation workers (default: all CPUs;
//	              generated graphs are identical for any value)
//	-checkpoint   stream each completed grid cell to this JSONL file
//	-resume       replay a compatible checkpoint from -checkpoint and run
//	              only the missing cells
//	-report       which report to print: all, table1..4, fig1..fig7cd (default all)
//	-list         list engines, datasets and reports, then exit
//	-v            print progress to stderr
//
// Examples:
//
//	gdb-bench -report fig6 -datasets frb-s,frb-m -scale 0.005
//	gdb-bench -engines neo-1.9,sqlg -datasets ldbc -report fig2
//	gdb-bench -checkpoint run.jsonl -resume -export-json results.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/datasets"
	"repro/internal/engines"
	"repro/internal/harness"
)

func main() {
	var (
		engineList  = flag.String("engines", "", "comma-separated engines (default all)")
		datasetList = flag.String("datasets", "frb-s,frb-o,frb-m,frb-l", "comma-separated datasets")
		scale       = flag.Float64("scale", 0.002, "dataset scale factor (1.0 = paper sizes)")
		timeout     = flag.Duration("timeout", 2*time.Second, "per-query timeout")
		batch       = flag.Int("batch", 10, "batch mode size")
		seed        = flag.Int64("seed", 1, "random seed for parameter selection")
		workers     = flag.Int("workers", runtime.NumCPU(), "parallel evaluation workers")
		cellWorkers = flag.Int("cell-workers", 1, "parallel batch iterations per cell (non-mutating queries)")
		genWorkers  = flag.Int("gen-workers", runtime.NumCPU(), "parallel dataset generation workers")
		checkpoint  = flag.String("checkpoint", "", "stream completed grid cells to this JSONL file")
		resume      = flag.Bool("resume", false, "replay a compatible -checkpoint file and run only the missing cells")
		crashAfter  = flag.Int("crash-after", 0, "fault injection: exit(1) after N cells are checkpointed (testing)")
		frozenClock = flag.Bool("frozen-clock", false, "record all durations as zero for byte-deterministic exports (testing/CI)")
		report      = flag.String("report", "all", "report to print ("+strings.Join(harness.ReportNames(), ", ")+")")
		exportJSON  = flag.String("export-json", "", "also write raw results as JSON to this file")
		exportCSV   = flag.String("export-csv", "", "also write raw results as CSV to this file")
		importJSON  = flag.String("import-json", "", "render reports from a previous -export-json run instead of executing")
		list        = flag.Bool("list", false, "list engines, datasets and reports")
		verbose     = flag.Bool("v", false, "print progress to stderr")
	)
	flag.Parse()

	if *list {
		fmt.Println("engines: ", strings.Join(engines.Names(), ", "))
		fmt.Println("datasets:", strings.Join(datasets.Names(), ", "))
		fmt.Println("reports: ", strings.Join(harness.ReportNames(), ", "))
		return
	}

	// Validate every name up front: a typo in -report, -engines or
	// -datasets must surface now, not after the grid has run for hours.
	if !harness.ValidReport(*report) {
		fatal(fmt.Errorf("unknown report %q (known: %s)", *report, strings.Join(harness.ReportNames(), ", ")))
	}
	for _, e := range splitList(*engineList) {
		if engines.Constructor(e) == nil {
			fatal(fmt.Errorf("unknown engine %q (known: %s)", e, strings.Join(engines.Names(), ", ")))
		}
	}
	for _, d := range splitList(*datasetList) {
		if datasets.ByName(d) == nil {
			fatal(fmt.Errorf("unknown dataset %q (known: %s)", d, strings.Join(datasets.Names(), ", ")))
		}
	}

	datasets.SetGenWorkers(*genWorkers)
	cfg := harness.Config{
		Datasets:        splitList(*datasetList),
		Scale:           *scale,
		Timeout:         *timeout,
		BatchSize:       *batch,
		Seed:            *seed,
		Workers:         *workers,
		CellWorkers:     *cellWorkers,
		CheckpointPath:  *checkpoint,
		Resume:          *resume,
		CrashAfterCells: *crashAfter,
		FrozenClock:     *frozenClock,
		Isolation:       true,
	}
	if *engineList != "" {
		cfg.Engines = splitList(*engineList)
	}
	if *verbose {
		cfg.Progress = os.Stderr
	}

	// Static reports need no run.
	switch *report {
	case "table1":
		harness.ReportTable1(os.Stdout)
		return
	case "table2":
		harness.ReportTable2(os.Stdout)
		return
	}

	var res *harness.Results
	if *importJSON != "" {
		f, err := os.Open(*importJSON)
		if err != nil {
			fatal(err)
		}
		res, err = harness.ImportJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		runner, err := harness.NewRunner(cfg)
		if err != nil {
			fatal(err)
		}
		res, err = runner.Run()
		if err != nil {
			fatal(err)
		}
	}
	if err := harness.Report(res, *report, os.Stdout); err != nil {
		fatal(err)
	}
	if *exportJSON != "" {
		if err := writeFile(*exportJSON, func(f *os.File) error { return harness.ExportJSON(res, f) }); err != nil {
			fatal(err)
		}
	}
	if *exportCSV != "" {
		if err := writeFile(*exportCSV, func(f *os.File) error { return harness.ExportCSV(res, f) }); err != nil {
			fatal(err)
		}
	}
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gdb-bench:", err)
	os.Exit(1)
}
