// Command gdb-bench runs the micro-benchmark evaluation and prints the
// paper's tables and figures.
//
// Usage:
//
//	gdb-bench [flags]
//
//	-engines      comma-separated engine names (default: all nine)
//	-datasets     comma-separated dataset names (default: frb-s,frb-o,frb-m,frb-l)
//	-scale        dataset scale factor, 1.0 = paper sizes (default 0.002)
//	-timeout      per-query timeout (default 2s; the paper used 2h at full scale)
//	-batch        batch size (default 10, as in the paper)
//	-seed         random seed for parameter selection
//	-workers      parallel grid workers (default: all CPUs; results are
//	              identical for any worker count)
//	-cell-workers parallel batch iterations inside one cell (non-mutating
//	              queries only; results are identical for any value)
//	-gen-workers  parallel dataset-generation workers (default: all CPUs;
//	              generated graphs are identical for any value)
//	-remote       comma-separated gdb-worker addresses (host:port) whose
//	              slots join the local workers in executing grid cells
//	-dataset-cache reuse dataset snapshot artifacts from this directory
//	              (content-addressed; cold runs populate it, warm runs
//	              skip generation — graphs are byte-identical either way)
//	-lsm-dir      durable mode: open durable-capable engines (titan) over
//	              a write-ahead log rooted in unique subdirectories of
//	              this path; other engines still run volatile
//	-serve-artifacts stream dataset artifacts to remote workers that
//	              request them (default true) — a cold worker fleet
//	              seeds itself from this scheduler instead of
//	              regenerating every dataset locally
//	-checkpoint   stream each completed grid cell to this JSONL file
//	-resume       replay a compatible checkpoint from -checkpoint and run
//	              only the missing cells
//	-status       print a -checkpoint file's progress (cells done,
//	              remaining, DNF per engine) and exit without executing
//	-report       which report to print: all, table1..4, fig1..fig7cd (default all)
//	-list         list engines, datasets and reports, then exit
//	-v            print progress to stderr
//
// Examples:
//
//	gdb-bench -report fig6 -datasets frb-s,frb-m -scale 0.005
//	gdb-bench -engines neo-1.9,sqlg -datasets ldbc -report fig2
//	gdb-bench -checkpoint run.jsonl -resume -export-json results.json
//	gdb-bench -checkpoint run.jsonl -status
//	gdb-bench -remote 10.0.0.2:9777,10.0.0.3:9777 -checkpoint run.jsonl
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/datasets"
	"repro/internal/engines"
	"repro/internal/harness"
)

// options holds every gdb-bench flag. Flags are declared through
// defineFlags so the doc-sync test can enumerate them and verify each
// one is documented in README/docs.
type options struct {
	engines      string
	datasets     string
	scale        float64
	timeout      time.Duration
	batch        int
	seed         int64
	workers      int
	cellWorkers  int
	genWorkers   int
	remote       string
	datasetCache string
	mmap         bool
	lsmDir       string
	serveArts    bool
	checkpoint   string
	resume       bool
	status       bool
	crashAfter   int
	frozenClock  bool
	optimize     bool
	report       string
	exportJSON   string
	exportCSV    string
	importJSON   string
	list         bool
	verbose      bool
}

func defineFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.engines, "engines", "", "comma-separated engines (default all)")
	fs.StringVar(&o.datasets, "datasets", "frb-s,frb-o,frb-m,frb-l", "comma-separated datasets")
	fs.Float64Var(&o.scale, "scale", 0.002, "dataset scale factor (1.0 = paper sizes)")
	fs.DurationVar(&o.timeout, "timeout", 2*time.Second, "per-query timeout")
	fs.IntVar(&o.batch, "batch", 10, "batch mode size")
	fs.Int64Var(&o.seed, "seed", 1, "random seed for parameter selection")
	fs.IntVar(&o.workers, "workers", runtime.NumCPU(), "parallel evaluation workers")
	fs.IntVar(&o.cellWorkers, "cell-workers", 1, "parallel batch iterations per cell (non-mutating queries)")
	fs.IntVar(&o.genWorkers, "gen-workers", runtime.NumCPU(), "parallel dataset generation workers")
	fs.StringVar(&o.remote, "remote", "", "comma-separated gdb-worker addresses (host:port) adding remote grid slots")
	fs.StringVar(&o.datasetCache, "dataset-cache", "", "reuse dataset snapshot artifacts from this directory (populated on miss)")
	fs.BoolVar(&o.mmap, "mmap", false, "memory-map warm -dataset-cache artifacts instead of decoding them onto the heap (identical results)")
	fs.StringVar(&o.lsmDir, "lsm-dir", "", "durable mode: root each durable-capable engine's LSM store (WAL + recovery) in a unique subdirectory of this path")
	fs.BoolVar(&o.serveArts, "serve-artifacts", true, "stream dataset artifacts to remote workers that request them")
	fs.StringVar(&o.checkpoint, "checkpoint", "", "stream completed grid cells to this JSONL file")
	fs.BoolVar(&o.resume, "resume", false, "replay a compatible -checkpoint file and run only the missing cells")
	fs.BoolVar(&o.status, "status", false, "print the -checkpoint file's progress and exit without executing")
	fs.IntVar(&o.crashAfter, "crash-after", 0, "fault injection: exit(1) after N cells are checkpointed (testing)")
	fs.BoolVar(&o.frozenClock, "frozen-clock", false, "record all durations as zero for byte-deterministic exports (testing/CI)")
	fs.BoolVar(&o.optimize, "optimize", true, "enable the gremlin plan optimizer; -optimize=false runs every query exactly as written (A/B escape hatch, identical results)")
	fs.StringVar(&o.report, "report", "all", "report to print ("+strings.Join(harness.ReportNames(), ", ")+")")
	fs.StringVar(&o.exportJSON, "export-json", "", "also write raw results as JSON to this file")
	fs.StringVar(&o.exportCSV, "export-csv", "", "also write raw results as CSV to this file")
	fs.StringVar(&o.importJSON, "import-json", "", "render reports from a previous -export-json run instead of executing")
	fs.BoolVar(&o.list, "list", false, "list engines, datasets and reports")
	fs.BoolVar(&o.verbose, "v", false, "print progress to stderr")
	return o
}

func main() {
	o := defineFlags(flag.CommandLine)
	flag.Parse()

	if o.list {
		fmt.Println("engines: ", strings.Join(engines.Names(), ", "))
		fmt.Println("datasets:", strings.Join(datasets.Names(), ", "))
		fmt.Println("reports: ", strings.Join(harness.ReportNames(), ", "))
		return
	}

	// -status inspects a checkpoint and never executes: a multi-hour
	// run's progress is readable from any shell in milliseconds.
	if o.status {
		if o.checkpoint == "" {
			fatal(errors.New("-status requires -checkpoint FILE"))
		}
		st, err := harness.ReadStatus(o.checkpoint)
		if err != nil {
			fatal(err)
		}
		st.Render(os.Stdout)
		return
	}

	// Validate every name up front: a typo in -report, -engines or
	// -datasets must surface now, not after the grid has run for hours.
	if !harness.ValidReport(o.report) {
		fatal(fmt.Errorf("unknown report %q (known: %s)", o.report, strings.Join(harness.ReportNames(), ", ")))
	}
	for _, e := range splitList(o.engines) {
		if engines.Constructor(e) == nil {
			fatal(fmt.Errorf("unknown engine %q (known: %s)", e, strings.Join(engines.Names(), ", ")))
		}
	}
	for _, d := range splitList(o.datasets) {
		if datasets.ByName(d) == nil {
			fatal(fmt.Errorf("unknown dataset %q (known: %s)", d, strings.Join(datasets.Names(), ", ")))
		}
	}

	datasets.SetGenWorkers(o.genWorkers)
	cfg := harness.Config{
		Datasets:        splitList(o.datasets),
		Scale:           o.scale,
		Timeout:         o.timeout,
		BatchSize:       o.batch,
		Seed:            o.seed,
		Workers:         o.workers,
		CellWorkers:     o.cellWorkers,
		Remote:          splitList(o.remote),
		DatasetCacheDir: o.datasetCache,
		Mmap:            o.mmap,
		LSMDir:          o.lsmDir,
		ServeArtifacts:  o.serveArts,
		CheckpointPath:  o.checkpoint,
		Resume:          o.resume,
		CrashAfterCells: o.crashAfter,
		FrozenClock:     o.frozenClock,
		NoOptimize:      !o.optimize,
		Isolation:       true,
	}
	if o.engines != "" {
		cfg.Engines = splitList(o.engines)
	}
	if o.verbose {
		cfg.Progress = os.Stderr
	}

	// Static reports need no run.
	switch o.report {
	case "table1":
		harness.ReportTable1(os.Stdout)
		return
	case "table2":
		harness.ReportTable2(os.Stdout)
		return
	}

	var res *harness.Results
	if o.importJSON != "" {
		f, err := os.Open(o.importJSON)
		if err != nil {
			fatal(err)
		}
		res, err = harness.ImportJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		runner, err := harness.NewRunner(cfg)
		if err != nil {
			fatal(err)
		}
		res, err = runner.Run()
		if err != nil {
			fatal(err)
		}
	}
	if err := harness.Report(res, o.report, os.Stdout); err != nil {
		fatal(err)
	}
	if o.exportJSON != "" {
		if err := writeFile(o.exportJSON, func(f *os.File) error { return harness.ExportJSON(res, f) }); err != nil {
			fatal(err)
		}
	}
	if o.exportCSV != "" {
		if err := writeFile(o.exportCSV, func(f *os.File) error { return harness.ExportCSV(res, f) }); err != nil {
			fatal(err)
		}
	}
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gdb-bench:", err)
	os.Exit(1)
}
