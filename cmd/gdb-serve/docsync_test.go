package main

import (
	"flag"
	"testing"

	"repro/internal/docsync"
)

// TestDocSyncFlagsDocumented fails when a gdb-serve flag is missing
// from README.md and docs/ — the drift guard CI runs explicitly, so a
// new flag cannot land undocumented.
func TestDocSyncFlagsDocumented(t *testing.T) {
	docsync.FlagsDocumented(t, "../..", func(fs *flag.FlagSet) { defineFlags(fs) })
}
