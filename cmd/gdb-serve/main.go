// Command gdb-serve runs the sustained-traffic serving mode: one
// engine, one dataset, N concurrent clients issuing a seeded mixed
// workload, reporting throughput and latency quantiles as JSON — the
// contended regime the paper's quiesced per-query measurements cannot
// express (see METHODOLOGY.md, "Sustained-traffic serving").
//
// Usage:
//
//	gdb-serve -engine NAME [flags]
//
//	-engine        engine configuration to serve (required; see gdb-bench -list)
//	-dataset       dataset name (default mico)
//	-scale         dataset scale factor, 1.0 = paper sizes (default 0.002)
//	-clients       concurrent client count (default 8)
//	-duration      closed-loop run length when -ops is 0 (default 5s)
//	-ops           operations per client; required with -frozen-clock
//	-rate          total target arrival rate in ops/sec; 0 = closed loop
//	-mix           workload mix, e.g. read=60,traverse=20,insert=10,update=10
//	               (default read=70,traverse=30; mutating mixes need a
//	               ConcurrentWriter-granting engine)
//	-seed          random seed driving op streams and arrival times
//	-frozen-clock  deterministic discrete-event mode: virtual time, byte-
//	               identical op log and report for a fixed seed/mix/rate
//	-oplog         write the intended-operation log (JSON lines) to this file
//	-dataset-cache reuse dataset snapshot artifacts from this directory
//	-lsm-dir       durable mode: root the engine's LSM store (WAL + crash
//	               recovery) at this directory — titan engines only
//	-lsm-audit     recover the store at -lsm-dir, print recovery counters
//	               and an integrity audit as JSON, then exit
//	-v             print load/run progress to stderr
//
// Examples:
//
//	gdb-serve -engine neo-1.9 -dataset mico -clients 8 -duration 5s
//	gdb-serve -engine sqlg -rate 2000 -mix read=50,traverse=20,insert=20,update=10
//	gdb-serve -engine sparksee -frozen-clock -ops 1000 -oplog ops.jsonl
//	gdb-serve -engine titan-1.0 -lsm-dir walstore -mix read=20,insert=50,update=30
//	gdb-serve -engine titan-1.0 -lsm-dir walstore -lsm-audit
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/engines"
	"repro/internal/serve"
)

// options holds every gdb-serve flag. Flags are declared through
// defineFlags so the doc-sync test can enumerate them and verify each
// one is documented in README/docs.
type options struct {
	engine       string
	dataset      string
	scale        float64
	clients      int
	duration     time.Duration
	ops          int
	rate         float64
	mix          string
	seed         int64
	frozenClock  bool
	oplog        string
	datasetCache string
	lsmDir       string
	lsmAudit     bool
	verbose      bool
}

func defineFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.engine, "engine", "", "engine configuration to serve (required)")
	fs.StringVar(&o.dataset, "dataset", "mico", "dataset name")
	fs.Float64Var(&o.scale, "scale", 0.002, "dataset scale factor (1.0 = paper sizes)")
	fs.IntVar(&o.clients, "clients", 8, "concurrent client count")
	fs.DurationVar(&o.duration, "duration", 5*time.Second, "run length when -ops is 0 (real clock only)")
	fs.IntVar(&o.ops, "ops", 0, "operations per client (required with -frozen-clock)")
	fs.Float64Var(&o.rate, "rate", 0, "total target arrival rate in ops/sec; 0 = closed loop")
	fs.StringVar(&o.mix, "mix", serve.DefaultMix.String(), "workload mix, e.g. read=60,traverse=20,insert=10,update=10")
	fs.Int64Var(&o.seed, "seed", 1, "random seed for op streams and arrival times")
	fs.BoolVar(&o.frozenClock, "frozen-clock", false, "deterministic virtual-time mode (byte-identical op log and report)")
	fs.StringVar(&o.oplog, "oplog", "", "write the intended-operation log (JSON lines) to this file")
	fs.StringVar(&o.datasetCache, "dataset-cache", "", "reuse dataset snapshot artifacts from this directory (populated on miss)")
	fs.StringVar(&o.lsmDir, "lsm-dir", "", "durable mode: root the engine's LSM store at this directory (WAL + crash recovery; titan engines only)")
	fs.BoolVar(&o.lsmAudit, "lsm-audit", false, "recover the store at -lsm-dir, print recovery counters and an integrity audit as JSON, and exit")
	fs.BoolVar(&o.verbose, "v", false, "print progress to stderr")
	return o
}

func main() {
	o := defineFlags(flag.CommandLine)
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "gdb-serve:", err)
		os.Exit(1)
	}
}

func run(o *options) error {
	if o.engine == "" {
		return errors.New("-engine is required (known: " + strings.Join(engines.Names(), ", ") + ")")
	}
	if engines.Constructor(o.engine) == nil {
		return fmt.Errorf("unknown engine %q (known: %s)", o.engine, strings.Join(engines.Names(), ", "))
	}
	if o.lsmAudit {
		if o.lsmDir == "" {
			return errors.New("-lsm-audit requires -lsm-dir")
		}
		return runAudit(o)
	}
	if o.lsmDir != "" && !engines.SupportsDurable(o.engine) {
		return fmt.Errorf("-lsm-dir: engine %q has no durable mode (titan engines only)", o.engine)
	}
	if datasets.ByName(o.dataset) == nil {
		return fmt.Errorf("unknown dataset %q (known: %s)", o.dataset, strings.Join(datasets.Names(), ", "))
	}
	mix, err := serve.ParseMix(o.mix)
	if err != nil {
		return err
	}

	progress := func(format string, args ...any) {}
	if o.verbose {
		progress = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}

	progress("acquiring dataset %s at scale %g", o.dataset, o.scale)
	g, _, err := datasets.Acquire(o.dataset, o.scale, o.datasetCache)
	if err != nil {
		return err
	}
	var e core.Engine
	if o.lsmDir != "" {
		de, rst, derr := engines.OpenDurable(o.engine, o.lsmDir)
		if derr != nil {
			return derr
		}
		progress("durable store at %s: replayed %d records (%d B truncated) in %v",
			o.lsmDir, rst.Records, rst.BytesTruncated, time.Duration(rst.WallNS))
		e = de
	} else {
		ve, verr := engines.New(o.engine)
		if verr != nil {
			return verr
		}
		e = ve
	}
	defer e.Close()
	progress("loading %d vertices / %d edges into %s", g.NumVertices(), g.NumEdges(), o.engine)
	res, err := e.BulkLoad(g)
	if err != nil {
		return fmt.Errorf("bulk load: %w", err)
	}

	cfg := serve.Config{
		Engine:      e,
		EngineName:  o.engine,
		Dataset:     o.dataset,
		Base:        res.VertexIDs,
		Clients:     o.clients,
		Ops:         o.ops,
		Rate:        o.rate,
		Mix:         mix,
		Seed:        o.seed,
		FrozenClock: o.frozenClock,
	}
	if o.ops == 0 {
		cfg.Duration = o.duration
	}
	if o.oplog != "" {
		f, err := os.Create(o.oplog)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.OpLog = f
	}

	progress("serving: %d clients, mix %s, loop %s", o.clients, mix, loopName(o.rate))
	rep, err := serve.Run(cfg)
	if err != nil {
		return err
	}
	return rep.Encode(os.Stdout)
}

// runAudit recovers the durable store at -lsm-dir and prints the
// recovery counters plus the integrity audit as JSON. No dataset is
// loaded and nothing is served — this is the post-crash verification
// half of the wal-smoke CI job.
func runAudit(o *options) error {
	rep, err := engines.DurableAudit(o.engine, o.lsmDir)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if !rep.AuditOk {
		return fmt.Errorf("audit found %d problems", len(rep.Problems))
	}
	return nil
}

func loopName(rate float64) string {
	if rate > 0 {
		return "open"
	}
	return "closed"
}
