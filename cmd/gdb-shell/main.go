// Command gdb-shell is an interactive shell over any of the nine
// engines: load or generate a dataset, then explore it with
// Gremlin-flavoured commands. Useful for eyeballing how the same data
// behaves across architectures.
//
// Usage:
//
//	gdb-shell [-engine neo-1.9]
//
// Session:
//
//	> gen yeast 0.05
//	loaded 200 vertices, 600 edges
//	> count v
//	200
//	> out 3
//	[17 44 102]
//	> bfs 3 2
//	23 vertices
//	> quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/engines"
)

func main() {
	engineName := flag.String("engine", "neo-1.9", "engine to start with")
	flag.Parse()

	e, err := engines.New(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdb-shell:", err)
		os.Exit(1)
	}
	s := newSession(e)
	fmt.Printf("gdb-shell on %s — type 'help'\n", *engineName)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		out, quit := s.Eval(sc.Text())
		if out != "" {
			fmt.Println(out)
		}
		if quit {
			break
		}
	}
	e.Close()
}
