package main

import (
	"strings"
	"testing"

	"repro/internal/engines"
)

func newTestSession(t *testing.T) *session {
	t.Helper()
	e, err := engines.New("neo-1.9")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return newSession(e)
}

// run evaluates a command and fails the test on a usage/unknown reply.
func run(t *testing.T, s *session, cmd string) string {
	t.Helper()
	out, quit := s.Eval(cmd)
	if quit {
		t.Fatalf("%q quit the shell", cmd)
	}
	if strings.HasPrefix(out, "usage:") || strings.HasPrefix(out, "unknown command") {
		t.Fatalf("%q -> %q", cmd, out)
	}
	return out
}

func TestShellCRUDFlow(t *testing.T) {
	s := newTestSession(t)
	if out := run(t, s, "addv name=ann age=31"); out != "vertex 0" {
		t.Fatalf("addv -> %q", out)
	}
	run(t, s, "addv name=bob")
	if out := run(t, s, "adde 0 1 knows since=2015"); out != "edge 0" {
		t.Fatalf("adde -> %q", out)
	}
	if out := run(t, s, "v 0"); !strings.Contains(out, "name=ann") || !strings.Contains(out, "age=31") {
		t.Fatalf("v 0 -> %q", out)
	}
	if out := run(t, s, "e 0"); !strings.Contains(out, "-knows->") || !strings.Contains(out, "since=2015") {
		t.Fatalf("e 0 -> %q", out)
	}
	if out := run(t, s, "count v"); out != "2" {
		t.Fatalf("count v -> %q", out)
	}
	if out := run(t, s, "out 0"); out != "[1]" {
		t.Fatalf("out 0 -> %q", out)
	}
	if out := run(t, s, "set v 0 age 32"); out != "ok" {
		t.Fatalf("set -> %q", out)
	}
	if out := run(t, s, "v 0"); !strings.Contains(out, "age=32") {
		t.Fatalf("v 0 after set -> %q", out)
	}
	if out := run(t, s, "search name ann"); !strings.Contains(out, "1 vertices") {
		t.Fatalf("search -> %q", out)
	}
	run(t, s, "index name")
	if out := run(t, s, "search name ann"); !strings.Contains(out, "1 vertices") {
		t.Fatalf("indexed search -> %q", out)
	}
	if out := run(t, s, "rme 0"); out != "removed" {
		t.Fatalf("rme -> %q", out)
	}
	if out := run(t, s, "count e"); out != "0" {
		t.Fatalf("count e -> %q", out)
	}
	if out := run(t, s, "rmv 1"); out != "removed" {
		t.Fatalf("rmv -> %q", out)
	}
}

func TestShellGenAndTraversals(t *testing.T) {
	s := newTestSession(t)
	out := run(t, s, "gen yeast 0.05")
	if !strings.Contains(out, "loaded") {
		t.Fatalf("gen -> %q", out)
	}
	if out := run(t, s, "count v"); out == "0" {
		t.Fatal("gen loaded nothing")
	}
	if out := run(t, s, "labels"); !strings.Contains(out, "-") {
		t.Fatalf("labels -> %q", out)
	}
	if out := run(t, s, "bfs 0 2"); !strings.Contains(out, "vertices") {
		t.Fatalf("bfs -> %q", out)
	}
	run(t, s, "sp 0 5")
	if out := run(t, s, "space"); !strings.Contains(out, "total") {
		t.Fatalf("space -> %q", out)
	}
	if out := run(t, s, "meta"); !strings.Contains(out, "neo-1.9") {
		t.Fatalf("meta -> %q", out)
	}
}

func TestShellEngineSwitch(t *testing.T) {
	s := newTestSession(t)
	run(t, s, "addv")
	if out := run(t, s, "engine sqlg"); !strings.Contains(out, "switched") {
		t.Fatalf("engine -> %q", out)
	}
	if out := run(t, s, "count v"); out != "0" {
		t.Fatalf("switch kept data: %q", out)
	}
	if out, _ := s.Eval("engine nope"); !strings.Contains(out, "unknown engine") {
		t.Fatalf("bad engine -> %q", out)
	}
}

func TestShellErrorsAndUsage(t *testing.T) {
	s := newTestSession(t)
	cases := []string{
		"adde", "v", "e 0", "rmv 99", "set v", "out", "count x",
		"gen nope 1", "gen yeast abc", "bfs a b", "sp 1", "load /nonexistent.json",
		"addv broken-prop",
	}
	for _, c := range cases {
		out, quit := s.Eval(c)
		if quit {
			t.Fatalf("%q quit", c)
		}
		if out == "" {
			t.Fatalf("%q produced no diagnostics", c)
		}
	}
	if out, _ := s.Eval("zzz"); !strings.Contains(out, "unknown command") {
		t.Fatalf("unknown -> %q", out)
	}
	if out, _ := s.Eval(""); out != "" {
		t.Fatalf("empty line -> %q", out)
	}
	if out, _ := s.Eval("help"); !strings.Contains(out, "commands:") {
		t.Fatalf("help -> %q", out)
	}
	if _, quit := s.Eval("quit"); !quit {
		t.Fatal("quit did not quit")
	}
}

func TestShellValueParsing(t *testing.T) {
	s := newTestSession(t)
	run(t, s, "addv i=42 f=2.5 b=true s=hello")
	out := run(t, s, "v 0")
	for _, want := range []string{"i=42", "f=2.5", "b=true", "s=hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("v 0 = %q, missing %s", out, want)
		}
	}
	// Typed search must distinguish int from string.
	if out := run(t, s, "search i 42"); !strings.Contains(out, "1 vertices") {
		t.Fatalf("typed search -> %q", out)
	}
	if out := run(t, s, "search s 42"); !strings.Contains(out, "0 vertices") {
		t.Fatalf("string search -> %q", out)
	}
}
