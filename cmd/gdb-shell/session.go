package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/engines"
	"repro/internal/graphson"
	"repro/internal/gremlin"
)

// session interprets shell commands against one engine instance.
type session struct {
	e core.Engine
}

func newSession(e core.Engine) *session { return &session{e: e} }

const helpText = `commands:
  engine <name>                switch engine (discards data)
  gen <dataset> <scale>        generate a benchmark dataset
  load <file.json>             load a GraphSON file
  addv [k=v ...]               add a vertex
  adde <src> <dst> <label> [k=v ...]   add an edge
  v <id> | e <id>              show an object's label/properties
  rmv <id> | rme <id>          remove a vertex/edge
  set v|e <id> <name> <value>  set a property
  out|in|both <id> [label]     neighbours of a vertex
  count v|e                    object counts
  labels                       distinct edge labels
  search <name> <value>        vertices by property
  index <name>                 build an attribute index
  explain [noopt] <steps>      show the query plan with cardinality
                               estimates; steps are space-separated
                               (V, E, V:<id>, E:<id>, has:k=v,
                               hasLabel:l, out[:l], in, both, outE,
                               inE, bothE, outV, inV, degree:dir,k,
                               dedup, limit:n, sample:n). 'noopt'
                               explains the plan exactly as written.
  bfs <id> <depth> [label]     breadth-first reach
  sp <v1> <v2> [label]         shortest path
  space                        space occupancy report
  meta                         engine characteristics
  help | quit`

// Eval interprets one command line. It returns the printable result and
// whether the shell should exit.
func (s *session) Eval(line string) (string, bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", false
	}
	cmd, args := fields[0], fields[1:]
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	switch cmd {
	case "quit", "exit":
		return "bye", true
	case "help":
		return helpText, false
	case "engine":
		if len(args) != 1 {
			return "usage: engine <name>", false
		}
		ne, err := engines.New(args[0])
		if err != nil {
			return err.Error(), false
		}
		s.e.Close()
		s.e = ne
		return "switched to " + args[0], false
	case "gen":
		if len(args) != 2 {
			return "usage: gen <dataset> <scale>", false
		}
		spec := datasets.ByName(args[0])
		if spec == nil {
			return fmt.Sprintf("unknown dataset %q (known: %v)", args[0], datasets.Names()), false
		}
		scale, err := strconv.ParseFloat(args[1], 64)
		if err != nil || scale <= 0 {
			return "scale must be a positive number", false
		}
		g := spec.Generate(scale)
		if _, err := s.e.BulkLoad(g); err != nil {
			return err.Error(), false
		}
		return fmt.Sprintf("loaded %d vertices, %d edges", g.NumVertices(), g.NumEdges()), false
	case "load":
		if len(args) != 1 {
			return "usage: load <file.json>", false
		}
		f, err := os.Open(args[0])
		if err != nil {
			return err.Error(), false
		}
		defer f.Close()
		g, err := graphson.Read(f)
		if err != nil {
			return err.Error(), false
		}
		if _, err := s.e.BulkLoad(g); err != nil {
			return err.Error(), false
		}
		return fmt.Sprintf("loaded %d vertices, %d edges", g.NumVertices(), g.NumEdges()), false
	case "addv":
		props, err := parseProps(args)
		if err != nil {
			return err.Error(), false
		}
		id, err := s.e.AddVertex(props)
		if err != nil {
			return err.Error(), false
		}
		return fmt.Sprintf("vertex %d", id), false
	case "adde":
		if len(args) < 3 {
			return "usage: adde <src> <dst> <label> [k=v ...]", false
		}
		src, err1 := parseID(args[0])
		dst, err2 := parseID(args[1])
		if err1 != nil || err2 != nil {
			return "src and dst must be numeric ids", false
		}
		props, err := parseProps(args[3:])
		if err != nil {
			return err.Error(), false
		}
		id, err := s.e.AddEdge(src, dst, args[2], props)
		if err != nil {
			return err.Error(), false
		}
		return fmt.Sprintf("edge %d", id), false
	case "v", "e":
		if len(args) != 1 {
			return "usage: " + cmd + " <id>", false
		}
		id, err := parseID(args[0])
		if err != nil {
			return err.Error(), false
		}
		if cmd == "v" {
			p, err := s.e.VertexProps(id)
			if err != nil {
				return err.Error(), false
			}
			return formatProps(p), false
		}
		label, err := s.e.EdgeLabel(id)
		if err != nil {
			return err.Error(), false
		}
		src, dst, _ := s.e.EdgeEnds(id)
		p, _ := s.e.EdgeProps(id)
		return fmt.Sprintf("%d -%s-> %d %s", src, label, dst, formatProps(p)), false
	case "rmv", "rme":
		if len(args) != 1 {
			return "usage: " + cmd + " <id>", false
		}
		id, err := parseID(args[0])
		if err != nil {
			return err.Error(), false
		}
		if cmd == "rmv" {
			err = s.e.RemoveVertex(id)
		} else {
			err = s.e.RemoveEdge(id)
		}
		if err != nil {
			return err.Error(), false
		}
		return "removed", false
	case "set":
		if len(args) != 4 || (args[0] != "v" && args[0] != "e") {
			return "usage: set v|e <id> <name> <value>", false
		}
		id, err := parseID(args[1])
		if err != nil {
			return err.Error(), false
		}
		v := parseValue(args[3])
		if args[0] == "v" {
			err = s.e.SetVertexProp(id, args[2], v)
		} else {
			err = s.e.SetEdgeProp(id, args[2], v)
		}
		if err != nil {
			return err.Error(), false
		}
		return "ok", false
	case "out", "in", "both":
		if len(args) < 1 {
			return "usage: " + cmd + " <id> [label]", false
		}
		id, err := parseID(args[0])
		if err != nil {
			return err.Error(), false
		}
		d := map[string]core.Direction{"out": core.DirOut, "in": core.DirIn, "both": core.DirBoth}[cmd]
		ids := core.Collect(s.e.Neighbors(id, d, args[1:]...))
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return fmt.Sprint(ids), false
	case "count":
		if len(args) != 1 || (args[0] != "v" && args[0] != "e") {
			return "usage: count v|e", false
		}
		var n int64
		var err error
		if args[0] == "v" {
			n, err = s.e.CountVertices()
		} else {
			n, err = s.e.CountEdges()
		}
		if err != nil {
			return err.Error(), false
		}
		return strconv.FormatInt(n, 10), false
	case "labels":
		ls, err := gremlin.New(s.e).E().DistinctLabels(ctx)
		if err != nil {
			return err.Error(), false
		}
		sort.Strings(ls)
		return fmt.Sprint(ls), false
	case "search":
		if len(args) != 2 {
			return "usage: search <name> <value>", false
		}
		ids, err := gremlin.New(s.e).VHas(args[0], parseValue(args[1])).IDs(ctx)
		if err != nil {
			return err.Error(), false
		}
		return fmt.Sprintf("%d vertices %v", len(ids), truncIDs(ids, 20)), false
	case "explain":
		if len(args) > 0 && args[0] == "noopt" {
			ctx = gremlin.WithoutOptimizer(ctx)
			args = args[1:]
		}
		t, err := parseTraversal(gremlin.New(s.e), args)
		if err != nil {
			return err.Error(), false
		}
		return strings.TrimRight(t.Explain(ctx).String(), "\n"), false
	case "index":
		if len(args) != 1 {
			return "usage: index <name>", false
		}
		if err := s.e.BuildVertexPropIndex(args[0]); err != nil {
			return err.Error(), false
		}
		return "index built", false
	case "bfs":
		if len(args) < 2 {
			return "usage: bfs <id> <depth> [label]", false
		}
		id, err1 := parseID(args[0])
		depth, err2 := strconv.Atoi(args[1])
		if err1 != nil || err2 != nil {
			return "bfs needs numeric id and depth", false
		}
		vs, err := gremlin.BFS(ctx, s.e, id, depth, args[2:]...)
		if err != nil {
			return err.Error(), false
		}
		return fmt.Sprintf("%d vertices", len(vs)), false
	case "sp":
		if len(args) < 2 {
			return "usage: sp <v1> <v2> [label]", false
		}
		a, err1 := parseID(args[0])
		b, err2 := parseID(args[1])
		if err1 != nil || err2 != nil {
			return "sp needs numeric ids", false
		}
		path, err := gremlin.ShortestPath(ctx, s.e, a, b, args[2:]...)
		if err != nil {
			return err.Error(), false
		}
		if path == nil {
			return "unreachable", false
		}
		return fmt.Sprint(path), false
	case "space":
		r := s.e.SpaceUsage()
		keys := make([]string, 0, len(r.Breakdown))
		for k := range r.Breakdown {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		fmt.Fprintf(&b, "total %d bytes", r.Total)
		for _, k := range keys {
			fmt.Fprintf(&b, "\n  %-24s %d", k, r.Breakdown[k])
		}
		return b.String(), false
	case "meta":
		m := s.e.Meta()
		return fmt.Sprintf("%s (%s, %s): storage=%s traversal=%s gremlin=%s",
			m.Name, m.Kind, m.Substrate, m.Storage, m.EdgeTraversal, m.Gremlin), false
	default:
		return fmt.Sprintf("unknown command %q — try 'help'", cmd), false
	}
}

// parseTraversal builds a traversal from space-separated step tokens of
// the form op or op:args (see the explain entry in helpText). The first
// token must be a source (V, E, V:<id>, E:<id>).
func parseTraversal(g gremlin.G, args []string) (*gremlin.Traversal, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("usage: explain [noopt] V|E|V:<id>|E:<id> [step ...]")
	}
	var t *gremlin.Traversal
	for i, tok := range args {
		op, arg, _ := strings.Cut(tok, ":")
		if i == 0 {
			var err error
			if t, err = parseSource(g, op, arg); err != nil {
				return nil, err
			}
			continue
		}
		switch op {
		case "has":
			k, v, ok := strings.Cut(arg, "=")
			if !ok || k == "" {
				return nil, fmt.Errorf("step %q: want has:name=value", tok)
			}
			t = t.Has(k, parseValue(v))
		case "hasLabel":
			if arg == "" {
				return nil, fmt.Errorf("step %q: want hasLabel:label", tok)
			}
			t = t.HasLabel(arg)
		case "out":
			t = t.Out(stepLabels(arg)...)
		case "in":
			t = t.In(stepLabels(arg)...)
		case "both":
			t = t.Both(stepLabels(arg)...)
		case "outE":
			t = t.OutE(stepLabels(arg)...)
		case "inE":
			t = t.InE(stepLabels(arg)...)
		case "bothE":
			t = t.BothE(stepLabels(arg)...)
		case "outV":
			t = t.OutV()
		case "inV":
			t = t.InV()
		case "degree":
			dir, ks, ok := strings.Cut(arg, ",")
			d, dok := map[string]core.Direction{"out": core.DirOut, "in": core.DirIn, "both": core.DirBoth}[dir]
			k, err := strconv.ParseInt(ks, 10, 64)
			if !ok || !dok || err != nil {
				return nil, fmt.Errorf("step %q: want degree:out|in|both,k", tok)
			}
			t = t.DegreeAtLeast(d, k)
		case "dedup":
			t = t.Dedup()
		case "limit":
			n, err := strconv.ParseInt(arg, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("step %q: want limit:n", tok)
			}
			t = t.Limit(n)
		case "sample":
			n, err := strconv.Atoi(arg)
			if err != nil {
				return nil, fmt.Errorf("step %q: want sample:n", tok)
			}
			t = t.Sample(n, 1)
		default:
			return nil, fmt.Errorf("unknown step %q", tok)
		}
	}
	return t, nil
}

func parseSource(g gremlin.G, op, arg string) (*gremlin.Traversal, error) {
	switch {
	case op == "V" && arg == "":
		return g.V(), nil
	case op == "E" && arg == "":
		return g.E(), nil
	case op == "V":
		id, err := parseID(arg)
		if err != nil {
			return nil, err
		}
		return g.VID(id), nil
	case op == "E":
		id, err := parseID(arg)
		if err != nil {
			return nil, err
		}
		return g.EID(id), nil
	}
	return nil, fmt.Errorf("traversal must start with V, E, V:<id> or E:<id>")
}

func stepLabels(arg string) []string {
	if arg == "" {
		return nil
	}
	return strings.Split(arg, ",")
}

func parseID(s string) (core.ID, error) {
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return core.NoID, fmt.Errorf("%q is not an id", s)
	}
	return core.ID(n), nil
}

// parseValue maps a token to a typed value: int, float, bool, string.
func parseValue(s string) core.Value {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return core.I(n)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return core.F(f)
	}
	if b, err := strconv.ParseBool(s); err == nil {
		return core.B(b)
	}
	return core.S(s)
}

func parseProps(args []string) (core.Props, error) {
	if len(args) == 0 {
		return nil, nil
	}
	p := core.Props{}
	for _, a := range args {
		k, v, ok := strings.Cut(a, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("property %q must be name=value", a)
		}
		p[k] = parseValue(v)
	}
	return p, nil
}

func formatProps(p core.Props) string {
	if len(p) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("{")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", k, p[k])
	}
	b.WriteString("}")
	return b.String()
}

func truncIDs(ids []core.ID, n int) []core.ID {
	if len(ids) <= n {
		return ids
	}
	return ids[:n]
}
