// Command gdb-gen generates a benchmark dataset as a GraphSON file —
// the common input format of the suite (Table 2's Q1 loads it).
//
// Usage:
//
//	gdb-gen -dataset ldbc -scale 0.01 -out ldbc.json
//
// With -out "-" (the default) the document is written to stdout.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/datasets"
	"repro/internal/graphson"
)

func main() {
	var (
		dataset = flag.String("dataset", "ldbc", "dataset name (see gdb-bench -list)")
		scale   = flag.Float64("scale", 0.002, "scale factor (1.0 = paper sizes)")
		out     = flag.String("out", "-", "output file (\"-\" = stdout)")
	)
	flag.Parse()

	spec := datasets.ByName(*dataset)
	if spec == nil {
		fmt.Fprintf(os.Stderr, "gdb-gen: unknown dataset %q (known: %v)\n", *dataset, datasets.Names())
		os.Exit(1)
	}
	g := spec.Generate(*scale)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gdb-gen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := graphson.Write(bw, g); err != nil {
		fmt.Fprintln(os.Stderr, "gdb-gen:", err)
		os.Exit(1)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "gdb-gen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "gdb-gen: %s at scale %g: %d vertices, %d edges\n",
		*dataset, *scale, g.NumVertices(), g.NumEdges())
}
