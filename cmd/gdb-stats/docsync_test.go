package main

import (
	"flag"
	"testing"

	"repro/internal/docsync"
)

// TestDocSyncFlagsDocumented fails when a gdb-stats flag is missing
// from README.md and docs/ — the same drift guard gdb-bench has.
func TestDocSyncFlagsDocumented(t *testing.T) {
	docsync.FlagsDocumented(t, "../..", func(fs *flag.FlagSet) { defineFlags(fs) })
}
