// Command gdb-stats regenerates Table 3: the structural
// characteristics of every benchmark dataset, next to the values the
// paper reports for the full-size originals.
//
// Usage:
//
//	gdb-stats [-datasets yeast,mico,...] [-scale 0.01]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/datasets"
	"repro/internal/harness"
)

func main() {
	var (
		list  = flag.String("datasets", strings.Join(datasets.Names(), ","), "datasets to measure")
		scale = flag.Float64("scale", 0.002, "scale factor (1.0 = paper sizes)")
	)
	flag.Parse()

	res := &harness.Results{
		Config: harness.Config{Scale: *scale},
		Stats:  map[string]datasets.Table3Row{},
	}
	for _, name := range strings.Split(*list, ",") {
		name = strings.TrimSpace(name)
		spec := datasets.ByName(name)
		if spec == nil {
			fmt.Fprintf(os.Stderr, "gdb-stats: unknown dataset %q (known: %v)\n", name, datasets.Names())
			os.Exit(1)
		}
		res.Stats[name] = datasets.Stats(spec.Generate(*scale))
	}
	harness.ReportTable3(res, os.Stdout)
}
