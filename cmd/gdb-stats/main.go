// Command gdb-stats regenerates Table 3: the structural
// characteristics of every benchmark dataset, next to the values the
// paper reports for the full-size originals.
//
// Usage:
//
//	gdb-stats [-datasets yeast,mico,...] [-scale 0.01] [-dataset-cache DIR] [-mmap] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/datasets"
	"repro/internal/harness"
)

// options holds every gdb-stats flag, declared through defineFlags so
// the doc-sync test can enumerate them.
type options struct {
	list         string
	scale        float64
	datasetCache string
	mmap         bool
	workers      int
}

func defineFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.list, "datasets", strings.Join(datasets.Names(), ","), "datasets to measure")
	fs.Float64Var(&o.scale, "scale", 0.002, "scale factor (1.0 = paper sizes)")
	fs.StringVar(&o.datasetCache, "dataset-cache", "", "reuse dataset snapshot artifacts from this directory (populated on miss)")
	fs.BoolVar(&o.mmap, "mmap", false, "memory-map warm -dataset-cache artifacts instead of decoding them onto the heap (identical results)")
	fs.IntVar(&o.workers, "workers", runtime.NumCPU(), "parallel analytics workers (never changes the computed statistics)")
	return o
}

func main() {
	o := defineFlags(flag.CommandLine)
	flag.Parse()

	datasets.SetGenWorkers(o.workers)
	res := &harness.Results{
		Config: harness.Config{Scale: o.scale},
		Stats:  map[string]datasets.Table3Row{},
	}
	for _, name := range strings.Split(o.list, ",") {
		name = strings.TrimSpace(name)
		if datasets.ByName(name) == nil {
			fmt.Fprintf(os.Stderr, "gdb-stats: unknown dataset %q (known: %v)\n", name, datasets.Names())
			os.Exit(1)
		}
		// The analytics need only the CSR snapshot: a warm cache hit
		// decodes (or maps) just the columnar sections, skipping graph
		// materialization entirely.
		c, _, err := datasets.AcquireCSR(name, o.scale, datasets.AcquireOptions{
			CacheDir: o.datasetCache,
			Mmap:     o.mmap,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gdb-stats: %v\n", err)
			os.Exit(1)
		}
		res.Stats[name] = datasets.StatsCSR(c, o.workers)
	}
	harness.ReportTable3(res, os.Stdout)
}
