// Command gdb-lint runs the repository's invariant analyzers
// (internal/analysis: detmap, wallclock, seedrand, goroutinejoin,
// fsyncrename, mapalias) over the packages matching the given
// patterns. It is the machine check behind docs/INVARIANTS.md: no
// map-ordered bytes in encoders, no wall clock or global rand in
// result paths, no untracked goroutines in the remote layer, no
// rename without fsync, no mutation through slices that alias a
// read-only memory mapping.
//
// Usage:
//
//	gdb-lint [flags] [packages]
//
//	-json   emit diagnostics as a JSON array instead of file:line text
//	-list   list the analyzers and their one-line docs, then exit
//
// With no package patterns, ./... is assumed. The exit status is 0
// when the tree is clean, 1 when any diagnostic is reported, and 2
// when loading or analysis itself fails.
//
// Example:
//
//	gdb-lint ./...
//	gdb-lint -json ./internal/remote
//
// Findings are suppressed, with a mandatory reason, by the directive
//
//	//lint:gdb-allow <analyzer> <reason>
//
// on the flagged line or the line above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/detmap"
	"repro/internal/analysis/fsyncrename"
	"repro/internal/analysis/goroutinejoin"
	"repro/internal/analysis/mapalias"
	"repro/internal/analysis/seedrand"
	"repro/internal/analysis/wallclock"
)

// options holds every gdb-lint flag. Flags are declared through
// defineFlags so the doc-sync test can enumerate them and verify each
// one is documented in README/docs.
type options struct {
	jsonOut bool
	list    bool
}

func defineFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.BoolVar(&o.jsonOut, "json", false, "emit diagnostics as JSON")
	fs.BoolVar(&o.list, "list", false, "list analyzers and exit")
	return o
}

// suite is the full analyzer set, in the order they are listed and run.
var suite = []*analysis.Analyzer{
	detmap.Analyzer,
	wallclock.Analyzer,
	seedrand.Analyzer,
	goroutinejoin.Analyzer,
	fsyncrename.Analyzer,
	mapalias.Analyzer,
}

func main() {
	fs := flag.NewFlagSet("gdb-lint", flag.ExitOnError)
	opts := defineFlags(fs)
	fs.Parse(os.Args[1:])

	if opts.list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdb-lint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdb-lint:", err)
		os.Exit(2)
	}

	if opts.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "gdb-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
