// Package repro's root benchmark suite regenerates every table and
// figure of the paper's evaluation as testing.B benchmarks: one
// Benchmark function per table/figure, with engine (and where relevant
// query/depth) sub-benchmarks. ns/op is the paper's per-query latency;
// the Fig1 benches additionally report space via custom metrics.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate a single figure, e.g. the BFS sweep:
//
//	go test -bench=BenchmarkFig6BFS
//
// The default scale keeps the full suite laptop-sized; raise it with
//
//	REPRO_SCALE=0.02 go test -bench=. -timeout 2h
package repro

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/engines"
	"repro/internal/gremlin"
	"repro/internal/harness"
	"repro/internal/workload"
)

// benchScale is the dataset scale factor for the benchmark suite.
func benchScale() float64 {
	if s := os.Getenv("REPRO_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.002
}

// graphCache builds each dataset once per benchmark binary. With
// GDB_DATASET_CACHE set to a directory, acquisition additionally goes
// through the on-disk artifact cache (internal/datasets), so repeated
// benchmark invocations — and gdb-bench / gdb-worker runs pointed at
// the same directory — share one snapshot per (dataset, scale, seed)
// instead of regenerating per process.
var (
	graphMu    sync.Mutex
	graphCache = map[string]*core.Graph{}
)

func graph(b *testing.B, name string) *core.Graph {
	b.Helper()
	graphMu.Lock()
	defer graphMu.Unlock()
	key := fmt.Sprintf("%s@%g", name, benchScale())
	if g, ok := graphCache[key]; ok {
		return g
	}
	g, st, err := datasets.Acquire(name, benchScale(), os.Getenv("GDB_DATASET_CACHE"))
	if err != nil {
		b.Fatal(err)
	}
	if st.Err != nil {
		b.Logf("dataset cache: %v", st.Err)
	}
	graphCache[key] = g
	return g
}

// loaded returns a freshly loaded engine over the dataset.
func loaded(b *testing.B, engine, dataset string) (core.Engine, *core.LoadResult) {
	b.Helper()
	e, err := engines.New(engine)
	if err != nil {
		b.Fatal(err)
	}
	res, err := e.BulkLoad(graph(b, dataset))
	if err != nil {
		b.Fatal(err)
	}
	return e, res
}

func params(b *testing.B, dataset string, res *core.LoadResult) *harness.ParamGen {
	b.Helper()
	return harness.NewParamGen(graph(b, dataset), 1)
}

// benchDataset is the Freebase sample most figures sweep; frb-m keeps
// runtimes moderate while preserving the label-rich fragmented shape.
const benchDataset = "frb-m"

// runQuery benchmarks one micro query on one loaded engine.
func runQuery(b *testing.B, e core.Engine, pg *harness.ParamGen, res *core.LoadResult, name string) {
	b.Helper()
	q := workload.ByName(name)
	if q == nil {
		b.Fatalf("unknown query %s", name)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Run(ctx, e, pg.For(q, i, res)); err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
}

// --- Table 3 ---

// BenchmarkTable3Stats measures the dataset-statistics computation that
// regenerates Table 3.
func BenchmarkTable3Stats(b *testing.B) {
	for _, ds := range []string{"yeast", "frb-s", "ldbc"} {
		g := graph(b, ds)
		b.Run(ds, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row := datasets.Stats(g)
				if row.V == 0 {
					b.Fatal("empty stats")
				}
			}
		})
	}
}

// --- Figure 1(a,b): space occupancy ---

// BenchmarkFig1Space loads the dataset into each engine and reports the
// structural space as MB/load (space-MB metric), the quantity behind
// Figure 1(a,b).
func BenchmarkFig1Space(b *testing.B) {
	for _, en := range engines.Names() {
		b.Run(en, func(b *testing.B) {
			var total int64
			for i := 0; i < b.N; i++ {
				e, _ := loaded(b, en, benchDataset)
				total = e.SpaceUsage().Total
				e.Close()
			}
			b.ReportMetric(float64(total)/(1<<20), "space-MB")
		})
	}
}

// --- Figure 2: complex queries on ldbc ---

// BenchmarkFig2Complex runs representative complex queries (the
// single-label hop where Sqlg shines, the 2-hop friend recommendation,
// and the unfiltered 2-hop where Sqlg collapses).
func BenchmarkFig2Complex(b *testing.B) {
	g := graph(b, "ldbc")
	for _, en := range engines.Names() {
		e, res := loaded(b, en, "ldbc")
		cp := harness.ComplexFor(g, 1, res)
		ctx := context.Background()
		for _, qn := range []string{"city", "friend2", "triangle", "places"} {
			cq := workload.ComplexByName(qn)
			b.Run(en+"/"+qn, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := cq.Run(ctx, e, cp); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		e.Close()
	}
}

// --- Figure 3(a): loading ---

// BenchmarkFig3Load measures each engine's bulk load path (Q1).
func BenchmarkFig3Load(b *testing.B) {
	g := graph(b, benchDataset)
	for _, en := range engines.Names() {
		b.Run(en, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := engines.New(en)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := e.BulkLoad(g); err != nil {
					b.Fatal(err)
				}
				e.Close()
			}
		})
	}
}

// --- Figure 3(b): insertions ---

// BenchmarkFig3Insert measures node (Q2), edge (Q3) and combined (Q7)
// insertion.
func BenchmarkFig3Insert(b *testing.B) {
	for _, en := range engines.Names() {
		for _, qn := range []string{"Q2", "Q3", "Q7"} {
			b.Run(en+"/"+qn, func(b *testing.B) {
				e, res := loaded(b, en, benchDataset)
				defer e.Close()
				pg := params(b, benchDataset, res)
				runQuery(b, e, pg, res, qn)
			})
		}
	}
}

// --- Figure 3(c): updates and deletions ---

// BenchmarkFig3UpdateDelete measures property update (Q16) directly,
// and node deletion (Q18) as a delete+recreate cycle so the store never
// runs dry (the recreate is a Q2+Q3, whose cost Fig 3(b) shows is small
// against a cascading delete).
func BenchmarkFig3UpdateDelete(b *testing.B) {
	for _, en := range engines.Names() {
		b.Run(en+"/Q16", func(b *testing.B) {
			e, res := loaded(b, en, benchDataset)
			defer e.Close()
			pg := params(b, benchDataset, res)
			runQuery(b, e, pg, res, "Q16")
		})
		b.Run(en+"/Q18cycle", func(b *testing.B) {
			e, res := loaded(b, en, benchDataset)
			defer e.Close()
			pg := params(b, benchDataset, res)
			q := workload.ByName("Q18")
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pg.For(q, 0, res)
				if err := e.RemoveVertex(p.V); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				// Recreate the vertex at the same engine slot semantics:
				// a fresh vertex replaces it in the parameter pool.
				nv, err := e.AddVertex(core.Props{"recreated": core.I(int64(i))})
				if err != nil {
					b.Fatal(err)
				}
				res.VertexIDs[indexOfVertex(pg, q, res)] = nv
				_ = ctx
				b.StartTimer()
			}
		})
	}
}

// indexOfVertex resolves which dataset index the Q18 pool slot 0 maps
// to, so the recreated vertex can take its place.
func indexOfVertex(pg *harness.ParamGen, q *workload.Query, res *core.LoadResult) int {
	return pg.DatasetVertexIndex(q, 0)
}

// --- Figure 4: selections ---

// BenchmarkFig4Select measures the whole-graph scans (Q8 counts, Q11
// property search, Q13 label search).
func BenchmarkFig4Select(b *testing.B) {
	for _, en := range engines.Names() {
		for _, qn := range []string{"Q8", "Q11", "Q13"} {
			b.Run(en+"/"+qn, func(b *testing.B) {
				e, res := loaded(b, en, benchDataset)
				defer e.Close()
				pg := params(b, benchDataset, res)
				runQuery(b, e, pg, res, qn)
			})
		}
	}
}

// BenchmarkFig4ByID measures id lookups (Q14, Q15).
func BenchmarkFig4ByID(b *testing.B) {
	for _, en := range engines.Names() {
		for _, qn := range []string{"Q14", "Q15"} {
			b.Run(en+"/"+qn, func(b *testing.B) {
				e, res := loaded(b, en, benchDataset)
				defer e.Close()
				pg := params(b, benchDataset, res)
				runQuery(b, e, pg, res, qn)
			})
		}
	}
}

// BenchmarkFig4cIndex measures Q11 with the user attribute index built
// (engines that cannot exploit one show unchanged times, as in the
// paper; blaze is skipped as unsupported).
func BenchmarkFig4cIndex(b *testing.B) {
	for _, en := range engines.Names() {
		b.Run(en, func(b *testing.B) {
			e, res := loaded(b, en, benchDataset)
			defer e.Close()
			pg := params(b, benchDataset, res)
			if err := e.BuildVertexPropIndex(pg.VPropName()); err != nil {
				b.Skip("no user-controlled attribute indexes")
			}
			runQuery(b, e, pg, res, "Q11")
		})
	}
}

// --- Figure 5: traversals ---

// BenchmarkFig5Traverse measures local neighbourhood access (Q23 out,
// Q24 labelled both, Q27 incident labels).
func BenchmarkFig5Traverse(b *testing.B) {
	for _, en := range engines.Names() {
		for _, qn := range []string{"Q23", "Q24", "Q27"} {
			b.Run(en+"/"+qn, func(b *testing.B) {
				e, res := loaded(b, en, benchDataset)
				defer e.Close()
				pg := params(b, benchDataset, res)
				runQuery(b, e, pg, res, qn)
			})
		}
	}
}

// BenchmarkFig5Degree measures the whole-graph degree filters (Q30) and
// Q31; sparksee's OOM failure mode is reported as a skip.
func BenchmarkFig5Degree(b *testing.B) {
	for _, en := range engines.Names() {
		for _, qn := range []string{"Q30", "Q31"} {
			b.Run(en+"/"+qn, func(b *testing.B) {
				e, res := loaded(b, en, benchDataset)
				defer e.Close()
				pg := params(b, benchDataset, res)
				q := workload.ByName(qn)
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := q.Run(ctx, e, pg.For(q, i, res)); err != nil {
						if err == core.ErrOutOfMemory {
							b.Skipf("engine exhausted its memory budget (the paper's Sparksee failure)")
						}
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Figure 6: BFS depth sweep ---

// BenchmarkFig6BFS measures Q32 at depths 2–4.
func BenchmarkFig6BFS(b *testing.B) {
	for _, en := range engines.Names() {
		e, res := loaded(b, en, benchDataset)
		pg := params(b, benchDataset, res)
		q := workload.ByName("Q32")
		ctx := context.Background()
		for depth := 2; depth <= 4; depth++ {
			pg.SetDepth(depth)
			p := pg.For(q, 0, res)
			b.Run(fmt.Sprintf("%s/depth%d", en, depth), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := q.Run(ctx, e, p); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		e.Close()
	}
}

// --- Figure 7: shortest path and label-constrained traversals ---

// BenchmarkFig7SP measures Q34 on the Freebase sample and Q33/Q35 on
// ldbc (the label filters only discriminate there, as in the paper).
func BenchmarkFig7SP(b *testing.B) {
	for _, en := range engines.Names() {
		b.Run(en+"/Q34", func(b *testing.B) {
			e, res := loaded(b, en, benchDataset)
			defer e.Close()
			pg := params(b, benchDataset, res)
			runQuery(b, e, pg, res, "Q34")
		})
		for _, qn := range []string{"Q33", "Q35"} {
			b.Run(en+"/"+qn+"-ldbc", func(b *testing.B) {
				e, res := loaded(b, en, "ldbc")
				defer e.Close()
				pg := params(b, "ldbc", res)
				runQuery(b, e, pg, res, qn)
			})
		}
	}
}

// --- ablations (design choices DESIGN.md calls out) ---

// BenchmarkAblationNeoChains contrasts the two relationship-chain
// designs on label-filtered traversal: v3.0's per-(type,direction)
// groups vs v1.9's single chain — the "progress across versions"
// analysis of Section 6.4.
func BenchmarkAblationNeoChains(b *testing.B) {
	for _, en := range []string{"neo-1.9", "neo-3.0"} {
		for _, filtered := range []bool{false, true} {
			name := fmt.Sprintf("%s/filtered=%v", en, filtered)
			b.Run(name, func(b *testing.B) {
				e, res := loaded(b, en, benchDataset)
				defer e.Close()
				pg := params(b, benchDataset, res)
				q := workload.ByName("Q23")
				if filtered {
					q = workload.ByName("Q24")
				}
				runQuery(b, e, pg, res, q.Name)
			})
		}
	}
}

// BenchmarkAblationTitanCache contrasts Titan with and without the row
// cache on a repeated traversal — the effect that made some complex
// queries look unrepresentatively fast in Figure 2.
func BenchmarkAblationTitanCache(b *testing.B) {
	for _, en := range []string{"titan-0.5", "titan-1.0"} {
		b.Run(en, func(b *testing.B) {
			e, res := loaded(b, en, benchDataset)
			defer e.Close()
			pg := params(b, benchDataset, res)
			runQuery(b, e, pg, res, "Q23")
		})
	}
}

// BenchmarkAblationBlazeBulk contrasts the triple store's bulk-build
// load with the per-statement path the paper first attempted.
func BenchmarkAblationBlazeBulk(b *testing.B) {
	g := graph(b, "frb-s")
	b.Run("bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, _ := engines.New("blaze")
			if _, err := e.BulkLoad(g); err != nil {
				b.Fatal(err)
			}
			e.Close()
		}
	})
	b.Run("per-statement", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, _ := engines.New("blaze")
			ids := make([]core.ID, g.NumVertices())
			for v := range g.VProps {
				id, err := e.AddVertex(g.VProps[v])
				if err != nil {
					b.Fatal(err)
				}
				ids[v] = id
			}
			for j := range g.EdgeL {
				er := &g.EdgeL[j]
				if _, err := e.AddEdge(ids[er.Src], ids[er.Dst], er.Label, er.Props); err != nil {
					b.Fatal(err)
				}
			}
			e.Close()
		}
	})
}

// BenchmarkAblationGremlinOverhead isolates the traversal-machine
// overhead from raw engine calls: g.V(id).out() vs direct Neighbors.
func BenchmarkAblationGremlinOverhead(b *testing.B) {
	e, res := loaded(b, "neo-1.9", benchDataset)
	defer e.Close()
	pg := params(b, benchDataset, res)
	q := workload.ByName("Q23")
	v := pg.For(q, 0, res).V
	ctx := context.Background()
	b.Run("gremlin", func(b *testing.B) {
		g := gremlin.New(e)
		for i := 0; i < b.N; i++ {
			if _, err := g.VID(v).Out().Count(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Drain(e.Neighbors(v, core.DirOut))
		}
	})
}
